//! `ripsim` — run an HBM-switch simulation from a JSON specification.
//!
//! The downstream-user entry point: describe a router configuration and
//! a workload in one JSON file, get the switch report. Writes a sample
//! spec with `--example-spec`. `ripsim resilience` runs the canned
//! fault-injection demo: one of four HBM channels dies mid-run and
//! recovers, and the report shows the before/during/after timeline.
//! `ripsim trace [spec.json]` runs the spec (or the example spec) with
//! event tracing on and streams the full telemetry surface — switch
//! events, counters, gauges, histogram summaries, queue-depth series —
//! to stdout as deterministic JSONL (sim-time-stamped only), closed by
//! a terminal `run_end` record carrying the record count and the full
//! metric totals. The writer is flushed even on early termination.
//! `ripsim trace --chrome <out.json>` instead exports a Chrome
//! trace-event JSON file for Perfetto: per-bank HBM command timelines,
//! per-output PFI frame lifecycles, sampled packet spans, and per-plane
//! SPS activity lanes, optionally bounded by
//! `--trace-window <start_ps>:<end_ps>`.
//! `ripsim soak [spec.json] [--epoch <ps>]` reruns the spec at 4x its
//! arrival horizon and checks the streaming engine's in-flight working
//! set stays flat. With an epoch period (from `--epoch` or the spec's
//! `epoch_ps` field) both runs stream live epoch deltas and sampled
//! lifecycle spans to stdout as JSONL while they execute; the human
//! summary moves to stderr, and in-process SLO watchdogs (stall,
//! drop-rate, degraded capacity) fail the soak with a nonzero exit when
//! they fire. `--metrics <addr>` serves the cumulative stream as a
//! Prometheus scrape endpoint; `--inject-channel-fault <ch>` proves the
//! degraded-capacity alarm end to end.
//!
//! `--checkpoint-every <epochs>` makes the soak crash-safe: every N-th
//! telemetry epoch, the engine's complete mid-run state (event queue,
//! SRAM/HBM occupancy and timing, generator RNGs, telemetry clock) is
//! written to a versioned, CRC-checked snapshot at `--checkpoint-path`
//! (default `ripsim-soak.snapshot`, two-slot rotation, atomic rename).
//! SIGINT/SIGTERM take one final snapshot at the next epoch boundary
//! and exit cleanly. `ripsim soak <spec> --resume <path>` continues a
//! killed soak from its newest valid snapshot (falling back to the
//! `.prev` slot when the newest is truncated or corrupt): keep the
//! first `keep_lines=K` lines of the interrupted stdout stream (K is
//! reported on stderr at resume) and append the continuation's stdout,
//! and the merged stream — and the final report — is byte-identical to
//! the uninterrupted same-seed run. Checkpointing requires an epoch
//! period and excludes `--metrics` (the endpoint's cumulative state is
//! not part of the snapshot).
//!
//! `ripsim plane-worker <spec.json> --worker <id> --planes <list>`
//! runs a subset of the spec's SPS planes and pushes their framed
//! telemetry stream — epoch deltas, sampled spans, per-plane reports —
//! to a collector (`--connect <addr>`) or a file (`--out <path>`).
//! `ripsim collect <spec.json> --listen <addr>` accepts worker streams
//! over localhost TCP until every plane is covered (or `--from
//! <file>...` for offline ingest), reassembles them in plane order, and re-emits the
//! single-process JSONL stream on stdout — byte-identical to
//! `ripsim collect <spec.json> --oracle`, which runs the same spec
//! in-process. The merged stream feeds the same SLO watchdogs the soak
//! runs (a fired alarm fails the collection), and `--metrics <addr>`
//! serves the fleet-wide Prometheus endpoint with per-plane labels. A
//! worker that dies mid-stream surfaces as a typed `worker_lost`
//! watchdog record and a nonzero exit, never a hang.
//!
//! All simulation modes are pull-based: arrivals are generated on
//! demand by a merged packet source, never materialized as a trace, so
//! the horizon can grow without the memory footprint following it.
//!
//! Every mode honors the spec's `router.engine` field (`sequential` or
//! `{"kind": "sharded", "shards": N}`); `trace` and `soak` also take
//! `--threads <n>`, which overrides it (`1` = sequential, `n>1` = that
//! many input-stage worker shards). The sharded engine is byte-for-byte
//! identical to the sequential one — same reports, same JSONL — but
//! checkpointing (`--checkpoint-every` / `--resume`) refuses it with a
//! typed error: worker run-ahead is not part of a snapshot.
//!
//! ```text
//! ripsim --example-spec > my_sim.json
//! ripsim my_sim.json
//! ripsim trace my_sim.json > telemetry.jsonl
//! ripsim soak my_sim.json
//! ripsim soak configs/soak_live.json > epochs.jsonl
//! ripsim soak my_sim.json --epoch 2000000 > epochs.jsonl
//! ripsim soak my_sim.json --checkpoint-every 50 > part1.jsonl   # kill it
//! ripsim soak my_sim.json --resume ripsim-soak.snapshot > part2.jsonl
//! ripsim collect configs/fleet_small.json --listen 127.0.0.1:0 \
//!     --port-file port.txt > merged.jsonl &
//! ripsim plane-worker configs/fleet_small.json --worker 0 --planes 0 \
//!     --connect 127.0.0.1:$(cat port.txt)
//! ripsim plane-worker configs/fleet_small.json --worker 1 --planes 1,2,3 \
//!     --connect 127.0.0.1:$(cat port.txt)
//! ripsim collect configs/fleet_small.json --oracle > oracle.jsonl
//! diff merged.jsonl oracle.jsonl   # byte-identical
//! ripsim resilience
//! ```

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use rip_bench::fleet::{push_worker_stream, CollectError, Collector, FleetJob};
use rip_bench::{version_line, Table, SERVICE_VERSION};
use rip_core::{
    ConfigError, DrainPolicy, EngineKind, FaultKind, FaultPlan, HbmSwitch, LiveOptions,
    RouterConfig, RunOutcome, SpsRouter, SpsWorkload,
};
use rip_photonics::SplitPattern;
use rip_telemetry::{
    ChromeTraceSink, FanoutSink, FlightRecorder, FlightTee, FrameListener, JsonlSink,
    MetricsEndpoint, ProfileHub, SharedSink, TelemetrySink, TraceWindow, Watchdog, WatchdogConfig,
    WatchdogEvent, WatchdogKind,
};
use rip_traffic::{
    merge_streams, ArrivalProcess, BoundedSource, FiberFill, MergedSource, PacketGenerator,
    SizeDistribution, TrafficMatrix,
};
use rip_units::{DataSize, SimTime, TimeDelta};
use serde::{Deserialize, Serialize, Value};

/// Destination mix of the workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum MatrixSpec {
    /// Uniform over all outputs.
    Uniform,
    /// A fraction of each input's traffic targets one output.
    Hotspot { output: usize, fraction: f64 },
    /// Input `i` sends to output `(i + shift) mod N`.
    Permutation { shift: usize },
    /// Log-normally skewed demands.
    LogNormal { sigma: f64, seed: u64 },
}

impl MatrixSpec {
    fn build(&self, n: usize) -> Result<TrafficMatrix, String> {
        Ok(match *self {
            MatrixSpec::Uniform => TrafficMatrix::uniform(n, 1.0),
            MatrixSpec::Hotspot { output, fraction } => {
                if output >= n || !(0.0..=1.0).contains(&fraction) {
                    return Err("bad hotspot spec".into());
                }
                TrafficMatrix::hotspot(n, 1.0, output, fraction)
            }
            MatrixSpec::Permutation { shift } => {
                let perm: Vec<usize> = (0..n).map(|i| (i + shift) % n).collect();
                TrafficMatrix::permutation(&perm, 1.0)?
            }
            MatrixSpec::LogNormal { sigma, seed } => TrafficMatrix::log_normal(n, 1.0, sigma, seed),
        })
    }
}

/// Packet-size mix.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum SizeSpec {
    Fixed { bytes: u64 },
    Uniform { min: u64, max: u64 },
    Imix,
}

impl SizeSpec {
    fn build(&self) -> SizeDistribution {
        match *self {
            SizeSpec::Fixed { bytes } => {
                SizeDistribution::Fixed(rip_units::DataSize::from_bytes(bytes))
            }
            SizeSpec::Uniform { min, max } => SizeDistribution::Uniform { min, max },
            SizeSpec::Imix => SizeDistribution::Imix,
        }
    }
}

/// Arrival process.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum ProcessSpec {
    Poisson,
    Cbr,
    OnOff { mean_burst_packets: f64 },
}

impl ProcessSpec {
    fn build(&self) -> ArrivalProcess {
        match *self {
            ProcessSpec::Poisson => ArrivalProcess::Poisson,
            ProcessSpec::Cbr => ArrivalProcess::Cbr,
            ProcessSpec::OnOff { mean_burst_packets } => {
                ArrivalProcess::OnOff { mean_burst_packets }
            }
        }
    }
}

/// The complete simulation specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SimSpec {
    /// The switch configuration (every §2.2/§3.2 parameter).
    router: RouterConfig,
    /// Offered load per port, 0..=1.
    load: f64,
    /// Destination mix.
    matrix: MatrixSpec,
    /// Packet sizes.
    sizes: SizeSpec,
    /// Arrival process.
    process: ProcessSpec,
    /// Flows per port.
    flows: usize,
    /// RNG seed.
    seed: u64,
    /// Simulated arrival horizon, microseconds.
    horizon_us: u64,
    /// Extra drain time after the last arrival, as a multiple of the
    /// horizon.
    drain_factor: u64,
    /// Live-telemetry epoch period in picoseconds (`ripsim soak`):
    /// when set, epoch deltas and sampled lifecycle spans stream to
    /// stdout as JSONL while the run executes. `--epoch <ps>` on the
    /// command line overrides it. Absent/null = silent.
    #[serde(default)]
    epoch_ps: Option<u64>,
}

impl SimSpec {
    fn example() -> Self {
        SimSpec {
            router: RouterConfig::small(),
            load: 0.8,
            matrix: MatrixSpec::Uniform,
            sizes: SizeSpec::Imix,
            process: ProcessSpec::Poisson,
            flows: 256,
            seed: 42,
            horizon_us: 100,
            drain_factor: 4,
            epoch_ps: None,
        }
    }
}

/// Validate `spec` and build its pull-based per-port packet sources:
/// the same arrival sequence the old materialized trace held, streamed
/// lazily (one bounded generator per port). The engine selected by
/// `spec.router.engine` decides how they are consumed: the sequential
/// engine merges them on the calling thread, the sharded engine
/// partitions them across worker shards.
fn build_port_sources(
    spec: &SimSpec,
    horizon: SimTime,
) -> Result<Vec<BoundedSource<PacketGenerator>>, String> {
    spec.router.validate().map_err(|e| e.to_string())?;
    if !(0.0..=1.0).contains(&spec.load) {
        return Err(format!("load {} out of [0, 1]", spec.load));
    }
    if spec.horizon_us == 0 || spec.drain_factor == 0 {
        return Err("horizon and drain factor must be positive".into());
    }
    let n = spec.router.ribbons;
    let tm = spec.matrix.build(n)?;
    let lanes: Vec<BoundedSource<PacketGenerator>> = (0..n)
        .map(|port| {
            let g = PacketGenerator::new(
                port,
                spec.router.port_rate(),
                (spec.load * tm.row_load(port)).min(1.0),
                tm.row(port).to_vec(),
                spec.sizes.build(),
                spec.process.build(),
                spec.flows,
                rip_sim::rng::derive_seed(spec.seed, port as u64),
            )?;
            Ok(BoundedSource::new(g, horizon))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(lanes)
}

/// The per-port sources merged into one stream — what the sequential
/// checkpointed soak consumes (snapshots capture the merged cursor).
fn build_source(
    spec: &SimSpec,
    horizon: SimTime,
) -> Result<MergedSource<BoundedSource<PacketGenerator>>, String> {
    Ok(MergedSource::new(build_port_sources(spec, horizon)?))
}

/// Apply a `--threads N` override to the spec's engine selection:
/// `1` forces the sequential engine, anything else asks for that many
/// input-stage shards (validated against the port count by
/// [`RouterConfig::validate`], so `0` or more threads than ports fail
/// with the typed [`ConfigError`]).
fn apply_threads(spec: &mut SimSpec, threads: Option<usize>) {
    match threads {
        None => {}
        Some(1) => spec.router.engine = EngineKind::Sequential,
        Some(shards) => spec.router.engine = EngineKind::Sharded { shards },
    }
}

/// The spec's simulation deadline: its drain factor applied on top of
/// the arrival horizon by the explicit [`DrainPolicy`].
fn drain_deadline(spec: &SimSpec, horizon: SimTime) -> SimTime {
    DrainPolicy::HorizonFactor {
        factor: 1 + spec.drain_factor,
    }
    .deadline(horizon)
}

fn run(spec: &SimSpec) -> Result<(), String> {
    let horizon = SimTime::from_ns(spec.horizon_us * 1000);
    let ports = build_port_sources(spec, horizon)?;
    let n = spec.router.ribbons;
    println!(
        "spec: {} ports x {}, frame {}, load {:.2}, streaming arrivals over {} us",
        n,
        spec.router.port_rate(),
        spec.router.frame_size(),
        spec.load,
        spec.horizon_us
    );
    let mut sw = HbmSwitch::new(spec.router.clone()).map_err(|e| e.to_string())?;
    sw.run_ports(ports, drain_deadline(spec, horizon), &FaultPlan::default());
    let r = sw.into_report();

    let mut t = Table::new(&["metric", "value"]);
    t.row(&["offered packets".into(), r.offered_packets.to_string()]);
    t.row(&["delivered packets".into(), r.delivered_packets.to_string()]);
    t.row(&[
        "delivery fraction".into(),
        format!("{:.3}%", r.delivery_fraction * 100.0),
    ]);
    t.row(&["delivered rate".into(), format!("{}", r.delivered_rate)]);
    t.row(&[
        "drops input / HBM-region".into(),
        format!("{} / {}", r.dropped_input, r.dropped_frames),
    ]);
    t.row(&[
        "delay mean / p99".into(),
        format!(
            "{:.2} us / {:.2} us",
            r.delays_ns.mean().unwrap_or(f64::NAN) / 1e3,
            r.delays_ns.quantile(0.99).unwrap_or(f64::NAN) / 1e3
        ),
    ]);
    t.row(&[
        "HBM utilization".into(),
        format!("{:.1}%", r.hbm_utilization * 100.0),
    ]);
    t.row(&[
        "SRAM peaks in/tail/head".into(),
        format!("{} / {} / {}", r.input_peak, r.tail_peak, r.head_peak),
    ]);
    t.row(&["padding injected".into(), format!("{}", r.padded_bytes)]);
    t.row(&[
        "peak in-flight packets".into(),
        r.peak_in_flight_packets.to_string(),
    ]);
    t.print("ripsim report");
    Ok(())
}

/// `--profile` / `--profile-out`: the wall-clock self-profiler,
/// shared by `soak`, `trace`, `plane-worker` and `collect`. Profile
/// records are a separate stream from the deterministic telemetry:
/// they go to stderr (or `--profile-out <file>`), never stdout, so
/// reports, JSONL, traces and checkpoints stay byte-identical with
/// profiling on or off.
#[derive(Default, Clone)]
struct ProfileOptions {
    /// Enable the self-profiler.
    profile: bool,
    /// Write profile JSONL here instead of stderr.
    profile_out: Option<String>,
}

/// Build the profile hub for `opts`, wiring its JSONL output to stderr
/// or the `--profile-out` file. `None` when profiling is off — the hot
/// paths then cost one `Option` discriminant check and zero clock
/// reads.
fn build_profile_hub(opts: &ProfileOptions) -> Result<Option<ProfileHub>, String> {
    if !opts.profile {
        if opts.profile_out.is_some() {
            return Err("--profile-out needs --profile".into());
        }
        return Ok(None);
    }
    let hub = ProfileHub::new();
    match &opts.profile_out {
        Some(path) => {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot write {path}: {e}"))?;
            hub.set_output(Box::new(std::io::BufWriter::new(file)));
        }
        None => hub.set_output(Box::new(std::io::stderr())),
    }
    Ok(Some(hub))
}

/// Command-line options of `ripsim soak` beyond the spec itself.
#[derive(Default)]
struct SoakOptions {
    /// Serve Prometheus exposition of the live epoch stream at this
    /// address (e.g. `127.0.0.1:0` for an ephemeral port).
    metrics: Option<String>,
    /// Write the bound metrics port to this file once the endpoint is
    /// up — how CI discovers an ephemeral port.
    metrics_port_file: Option<String>,
    /// Keep the metrics endpoint alive this long after the runs finish
    /// so a scraper can read the final totals.
    metrics_hold_ms: u64,
    /// Kill this HBM channel a quarter into the arrival horizon and
    /// never recover it — the degraded-capacity watchdog must fire.
    inject_channel_fault: Option<usize>,
    /// Snapshot the engine every this many telemetry epochs.
    checkpoint_every: Option<u64>,
    /// Where the snapshot (and its `.prev` rotation slot) lives.
    checkpoint_path: Option<String>,
    /// Continue a killed soak from this snapshot.
    resume: Option<String>,
    /// Wall-clock self-profiler options.
    prof: ProfileOptions,
    /// Where flight-recorder post-mortem bundles land (default `.`).
    flight_dir: Option<String>,
}

// ------------------------------------------------------------------
// Graceful-stop plumbing for checkpointed soaks. The handler only
// flips an atomic (the async-signal-safe subset); the run loop polls
// it at epoch boundaries and exits through a final snapshot.
// ------------------------------------------------------------------

// `signal(2)` from the platform libc this binary already links; used
// instead of a crate dependency for exactly two calls.
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Set by SIGINT/SIGTERM; polled by the checkpointed soak loop.
static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn request_stop(_signum: i32) {
    STOP.store(true, Ordering::SeqCst);
}

fn install_stop_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = request_stop as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

/// Build the soak's flight recorder: a bounded ring of recent epoch
/// deltas, every watchdog event, and (when profiling) recent profile
/// records, dumped as a `flight_<reason>.json` post-mortem bundle on a
/// watchdog alarm, SIGINT/SIGTERM, or panic. Recording never touches
/// the deterministic output surfaces.
fn build_flight_recorder(spec: &SimSpec, hub: &Option<ProfileHub>) -> FlightRecorder {
    let rec = FlightRecorder::new("ripsim", SERVICE_VERSION, 64);
    rec.set_config_echo(spec.to_value());
    if let Some(h) = hub {
        rec.attach_profile_hub(h.clone());
    }
    rec
}

/// Chain a panic hook that dumps the flight bundle before the default
/// hook prints the panic message — a crashed soak leaves a post-mortem
/// behind, not just a backtrace.
fn install_flight_panic_hook(rec: FlightRecorder, dir: String) {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if let Ok(Some(path)) = rec.dump(Path::new(&dir), "panic") {
            eprintln!("ripsim: flight bundle written to {}", path.display());
        }
        prev(info);
    }));
}

/// Report a flight dump's outcome on stderr (best-effort: a failed
/// dump must not mask the condition that triggered it).
fn report_flight_dump(rec: &FlightRecorder, dir: &str, reason: &str) {
    match rec.dump(Path::new(dir), reason) {
        Ok(Some(path)) => eprintln!("ripsim: flight bundle written to {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("ripsim: flight dump failed: {e}"),
    }
}

/// Sink wrapper polling the stop flag at epoch boundaries for the
/// plain (non-checkpointed) soak: SIGINT/SIGTERM dump the flight
/// bundle and exit 130 instead of the default silent kill, so an
/// operator interrupting a wedged soak still gets the post-mortem.
struct SignalWatch<S: TelemetrySink> {
    inner: S,
    rec: FlightRecorder,
    dir: String,
}

impl<S: TelemetrySink> TelemetrySink for SignalWatch<S> {
    fn on_epoch(&mut self, source: &str, epoch: u64, delta: &rip_telemetry::EpochDelta) {
        self.inner.on_epoch(source, epoch, delta);
        if STOP.load(Ordering::SeqCst) {
            eprintln!("ripsim: stop requested; dumping flight bundle");
            report_flight_dump(&self.rec, &self.dir, "signal");
            std::process::exit(130);
        }
    }

    fn on_span(&mut self, source: &str, span: &rip_telemetry::SpanEvent) {
        self.inner.on_span(source, span);
    }

    fn on_watchdog(&mut self, source: &str, event: &WatchdogEvent) {
        self.inner.on_watchdog(source, event);
    }

    fn on_run_end(&mut self, source: &str, at: SimTime, totals: &rip_telemetry::MetricsRegistry) {
        self.inner.on_run_end(source, at, totals);
    }
}

/// Summary of one completed soak run inside a snapshot: just the
/// fields the end-of-soak scaling checks need.
#[derive(Clone, Serialize, Deserialize)]
struct RunDone {
    offered_packets: u64,
    delivered_packets: u64,
    peak_in_flight: u64,
}

/// The payload of a soak snapshot (wrapped in the CRC envelope by
/// `rip_sim::snapshot`): where in the two-run soak we are, how many
/// stdout lines are already final, and the running engine's state.
#[derive(Serialize, Deserialize)]
struct SoakSnapshot {
    /// JSON echo of the spec; resuming under a different spec is
    /// refused.
    spec: String,
    /// Checkpoint interval in epochs (reused on resume unless
    /// overridden).
    every: u64,
    /// Index of the run in progress within the soak's mult sequence.
    run_index: u64,
    /// JSONL lines fully emitted by completed runs, incl. `run_end`s.
    lines_done: u64,
    /// Completed runs' summaries, in order.
    done: Vec<RunDone>,
    /// JSONL lines the running run had emitted at snapshot time.
    records: u64,
    /// Engine snapshot of the running run; `Null` between runs.
    engine: Value,
}

/// Serialize and crash-safely write one soak snapshot.
#[allow(clippy::too_many_arguments)]
fn persist_soak(
    path: &str,
    spec_echo: &str,
    every: u64,
    run_index: u64,
    lines_done: u64,
    done: &[RunDone],
    records: u64,
    engine: &Value,
) -> Result<(), rip_sim::snapshot::SnapshotError> {
    let snap = SoakSnapshot {
        spec: spec_echo.to_string(),
        every,
        run_index,
        lines_done,
        done: done.to_vec(),
        records,
        engine: engine.clone(),
    };
    let payload = serde_json::to_string(&snap).expect("snapshot serializes");
    rip_sim::snapshot::write_snapshot(Path::new(path), payload.as_bytes())
}

/// The crash-safe variant of [`run_soak`]: same two runs, same JSONL
/// stream, but through [`HbmSwitch::run_source_checkpointed`] with a
/// snapshot every `--checkpoint-every` epochs (and on SIGINT/SIGTERM,
/// which exit cleanly after one final snapshot). A `--resume` picks up
/// at the snapshotted run and epoch; stderr reports `keep_lines=K`, the
/// prefix of the interrupted stdout stream that is still valid —
/// `head -n K interrupted.jsonl` + the resumed stream is byte-identical
/// to the uninterrupted run.
///
/// The stream goes to stdout unbuffered-per-line (no `BufWriter`), so
/// every line a snapshot counts is on disk before the snapshot is; a
/// SIGKILL can only lose lines *after* the last checkpoint, which the
/// `keep_lines` prefix cuts anyway. Watchdogs and `--metrics` are off
/// in this mode: their cumulative state is not part of the snapshot.
fn run_soak_checkpointed(spec: &SimSpec, opts: &SoakOptions) -> Result<(), String> {
    if let EngineKind::Sharded { .. } = spec.router.engine {
        // A snapshot captures the one serial engine's complete state;
        // the sharded engine's worker run-ahead is not snapshottable,
        // so refuse loudly instead of resuming into a wrong answer.
        return Err(ConfigError::ShardedCheckpoint.to_string());
    }
    let period = match spec.epoch_ps {
        Some(0) => return Err(ConfigError::EpochZero.to_string()),
        Some(ps) => TimeDelta::from_ps(ps),
        None => return Err(ConfigError::CheckpointNeedsEpochs.to_string()),
    };
    if opts.checkpoint_every == Some(0) {
        return Err(ConfigError::CheckpointIntervalZero.to_string());
    }
    if opts.metrics.is_some() {
        return Err(
            "--metrics cannot be combined with checkpointing: the endpoint's cumulative \
             state is not part of the snapshot"
                .into(),
        );
    }
    let path = opts
        .checkpoint_path
        .clone()
        .or_else(|| opts.resume.clone())
        .unwrap_or_else(|| "ripsim-soak.snapshot".into());
    let spec_echo = serde_json::to_string(spec).expect("spec serializes");
    let (every, run_index, mut lines_done, mut done, records0, engine0) = match &opts.resume {
        Some(from) => {
            let (payload, slot) =
                rip_sim::snapshot::load_latest(Path::new(from)).map_err(|e| e.to_string())?;
            let text = String::from_utf8(payload)
                .map_err(|_| "snapshot payload is not UTF-8".to_string())?;
            let snap: SoakSnapshot = serde_json::from_str(&text)
                .map_err(|e| format!("snapshot payload does not decode: {e}"))?;
            if snap.spec != spec_echo {
                return Err("snapshot mismatch: it was taken from a different spec".into());
            }
            let every = opts.checkpoint_every.unwrap_or(snap.every);
            if every == 0 {
                return Err(ConfigError::CheckpointIntervalZero.to_string());
            }
            eprintln!(
                "ripsim: resuming soak (run {}) from {} -- keep_lines={}",
                snap.run_index + 1,
                slot.display(),
                snap.lines_done + snap.records
            );
            (
                every,
                snap.run_index,
                snap.lines_done,
                snap.done,
                snap.records,
                snap.engine,
            )
        }
        None => {
            let every = opts
                .checkpoint_every
                .expect("dispatch requires --checkpoint-every or --resume");
            (every, 0, 0, Vec::new(), 0, Value::Null)
        }
    };
    // Fail on an unwritable snapshot path now, not minutes into a run.
    let probe = format!("{path}.probe");
    if let Err(e) = std::fs::write(&probe, b"probe") {
        return Err(ConfigError::CheckpointDir {
            path: path.clone(),
            reason: e.to_string(),
        }
        .to_string());
    }
    let _ = std::fs::remove_file(&probe);
    install_stop_handlers();
    let hub = build_profile_hub(&opts.prof)?;
    let flight = build_flight_recorder(spec, &hub);
    let flight_dir = opts.flight_dir.clone().unwrap_or_else(|| ".".into());
    install_flight_panic_hook(flight.clone(), flight_dir.clone());

    let mults = [1u64, 4];
    if run_index as usize >= mults.len() || done.len() != run_index as usize {
        return Err("snapshot mismatch: run progress is inconsistent with this soak".into());
    }
    for idx in (run_index as usize)..mults.len() {
        let mult = mults[idx];
        let horizon = SimTime::from_ns(spec.horizon_us * 1000 * mult);
        let source = build_source(spec, horizon)?;
        let plan = match opts.inject_channel_fault {
            Some(channel) => {
                let plan = FaultPlan::new().inject(
                    SimTime::from_ps(horizon.as_ps() / 4),
                    FaultKind::HbmChannelDown { channel },
                );
                plan.validate(&spec.router).map_err(|e| e.to_string())?;
                plan
            }
            None => FaultPlan::default(),
        };
        let mut sw = HbmSwitch::new(spec.router.clone()).map_err(|e| e.to_string())?;
        if let Some(h) = &hub {
            sw.enable_profiler(h.clone());
        }
        // Line-buffered stdout, not BufWriter: each record line must be
        // out of the process before the snapshot that counts it lands.
        let mut sink = JsonlSink::new(std::io::stdout());
        let resume_engine = if idx as u64 == run_index && engine0 != Value::Null {
            // Mid-run resume: the restored engine continues the record
            // stream, and the sink's counter continues where the
            // interrupted run's stream left off (the final `run_end`
            // carries the full-run record count either way).
            sink.set_records(records0);
            Some(&engine0)
        } else {
            None
        };
        // The flight tee forwards every record unchanged (the stream
        // bytes — and the snapshots counting them — are identical with
        // or without it); it only copies recent epochs into the ring.
        sw.enable_live_telemetry(period, 256, Box::new(FlightTee::new(flight.clone(), sink)));
        let outcome = sw
            .run_source_checkpointed(
                source,
                drain_deadline(spec, horizon),
                &plan,
                resume_engine,
                every,
                || STOP.load(Ordering::SeqCst),
                |engine: &Value, epochs: u64, spans: u64| {
                    persist_soak(
                        &path,
                        &spec_echo,
                        every,
                        idx as u64,
                        lines_done,
                        &done,
                        epochs + spans,
                        engine,
                    )
                },
            )
            .map_err(|e| e.to_string())?;
        if outcome == RunOutcome::Interrupted {
            eprintln!(
                "ripsim: stop requested; snapshot written to {path} -- \
                 resume with: ripsim soak <spec.json> --resume {path}"
            );
            report_flight_dump(&flight, &flight_dir, "signal");
            if let Some(h) = &hub {
                h.flush_output();
            }
            return Ok(());
        }
        let epochs = sw.live_epochs_emitted();
        let spans = sw.live_spans_emitted();
        let r = sw.into_report();
        eprintln!(
            "horizon {} us: offered {}, delivered {}, peak in-flight {}",
            spec.horizon_us * mult,
            r.offered_packets,
            r.delivered_packets,
            r.peak_in_flight_packets
        );
        eprintln!("streamed {epochs} epoch deltas and {spans} lifecycle spans");
        lines_done += epochs + spans + 1; // + the run_end line
        done.push(RunDone {
            offered_packets: r.offered_packets,
            delivered_packets: r.delivered_packets,
            peak_in_flight: r.peak_in_flight_packets,
        });
        if idx + 1 < mults.len() {
            // Inter-run snapshot: the next run starts fresh.
            persist_soak(
                &path,
                &spec_echo,
                every,
                (idx + 1) as u64,
                lines_done,
                &done,
                0,
                &Value::Null,
            )
            .map_err(|e| e.to_string())?;
            if STOP.load(Ordering::SeqCst) {
                eprintln!(
                    "ripsim: stop requested between runs; snapshot written to {path} -- \
                     resume with: ripsim soak <spec.json> --resume {path}"
                );
                return Ok(());
            }
        }
    }
    if let Some(h) = &hub {
        h.flush_output();
    }
    let (r1, r2) = (&done[0], &done[1]);
    if r2.offered_packets < 3 * r1.offered_packets {
        return Err(format!(
            "offered packets did not scale with the horizon: {} -> {}",
            r1.offered_packets, r2.offered_packets
        ));
    }
    if r2.peak_in_flight > 2 * r1.peak_in_flight + 64 {
        return Err(format!(
            "peak in-flight grew with the horizon: {} -> {}",
            r1.peak_in_flight, r2.peak_in_flight
        ));
    }
    eprintln!("soak OK: in-flight working set stays bounded at 4x the horizon");
    Ok(())
}

/// A clonable handle sharing one [`MetricsEndpoint`] across the soak's
/// two runs (the endpoint owns the listener, so each run's fanout gets
/// a handle instead).
#[derive(Clone)]
struct SharedEndpoint(Arc<Mutex<MetricsEndpoint>>);

impl SharedEndpoint {
    /// Poison-tolerant lock: a panic on another thread must not
    /// cascade a second panic into the telemetry export path — the
    /// endpoint's state is a monotone counter set, safe to keep
    /// serving.
    fn lock(&self) -> std::sync::MutexGuard<'_, MetricsEndpoint> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl TelemetrySink for SharedEndpoint {
    fn on_epoch(&mut self, source: &str, epoch: u64, delta: &rip_telemetry::EpochDelta) {
        self.lock().on_epoch(source, epoch, delta);
    }

    fn on_span(&mut self, source: &str, span: &rip_telemetry::SpanEvent) {
        self.lock().on_span(source, span);
    }

    fn on_watchdog(&mut self, source: &str, event: &rip_telemetry::WatchdogEvent) {
        self.lock().on_watchdog(source, event);
    }

    fn on_run_end(&mut self, source: &str, at: SimTime, totals: &rip_telemetry::MetricsRegistry) {
        self.lock().on_run_end(source, at, totals);
    }
}

/// `ripsim soak [spec.json] [--epoch <ps>]`: run the spec streaming at
/// its horizon and again at 4x the horizon, and check that offered
/// traffic scales with the horizon while the engine's peak in-flight
/// packet count stays flat — the O(in-flight) memory property of the
/// pull-based engine. With an epoch period, both runs stream live
/// epoch deltas (plus 1-in-256 sampled lifecycle spans) to stdout as
/// JSONL while they execute, and the human summary moves to stderr so
/// the stream stays machine-clean.
///
/// The epoch stream is always consumed in-process by the SLO watchdogs
/// (stall / drop-rate / degraded-capacity); a fired watchdog fails the
/// soak. `--metrics <addr>` additionally serves the stream's cumulative
/// totals as a Prometheus scrape endpoint, and
/// `--inject-channel-fault <ch>` kills an HBM channel mid-run to prove
/// the degraded-capacity alarm path end to end.
fn run_soak(spec: &SimSpec, opts: &SoakOptions) -> Result<(), String> {
    if opts.checkpoint_every.is_some() || opts.resume.is_some() {
        return run_soak_checkpointed(spec, opts);
    }
    if opts.checkpoint_path.is_some() {
        return Err("--checkpoint-path needs --checkpoint-every or --resume".into());
    }
    let period = match spec.epoch_ps {
        Some(0) => return Err(ConfigError::EpochZero.to_string()),
        Some(ps) => Some(TimeDelta::from_ps(ps)),
        None => None,
    };
    if opts.metrics.is_some() && period.is_none() {
        return Err("--metrics needs an epoch period (--epoch or spec epoch_ps)".into());
    }
    // Route the human lines to stderr whenever JSONL owns stdout.
    let say: fn(std::fmt::Arguments) = if period.is_some() {
        |a| eprintln!("{a}")
    } else {
        |a| println!("{a}")
    };
    let hub = build_profile_hub(&opts.prof)?;
    let flight = build_flight_recorder(spec, &hub);
    let flight_dir = opts.flight_dir.clone().unwrap_or_else(|| ".".into());
    install_flight_panic_hook(flight.clone(), flight_dir.clone());
    if period.is_some() {
        // SIGINT/SIGTERM flip the stop flag; SignalWatch polls it at
        // epoch boundaries and exits through a flight dump. Without an
        // epoch period nothing polls the flag, so leave the default
        // (killing) disposition in place.
        install_stop_handlers();
    }
    let endpoint = match &opts.metrics {
        Some(addr) => {
            let mut ep = MetricsEndpoint::bind(addr).map_err(|e| format!("metrics bind: {e}"))?;
            ep.set_build_info("ripsim", SERVICE_VERSION);
            if let Some(h) = &hub {
                ep.attach_profile_hub("ripsim", h.clone());
            }
            let port = ep.local_addr().port();
            say(format_args!("metrics endpoint on port {port}"));
            if let Some(path) = &opts.metrics_port_file {
                std::fs::write(path, format!("{port}\n"))
                    .map_err(|e| format!("metrics port file: {e}"))?;
            }
            Some(SharedEndpoint(Arc::new(Mutex::new(ep))))
        }
        None => None,
    };
    let mut watchdog_events = Vec::new();
    let mut reports = Vec::new();
    for mult in [1u64, 4] {
        let horizon = SimTime::from_ns(spec.horizon_us * 1000 * mult);
        let ports = build_port_sources(spec, horizon)?;
        let plan = match opts.inject_channel_fault {
            Some(channel) => {
                let plan = FaultPlan::new().inject(
                    SimTime::from_ps(horizon.as_ps() / 4),
                    FaultKind::HbmChannelDown { channel },
                );
                plan.validate(&spec.router).map_err(|e| e.to_string())?;
                plan
            }
            None => FaultPlan::default(),
        };
        let mut sw = HbmSwitch::new(spec.router.clone()).map_err(|e| e.to_string())?;
        if let Some(h) = &hub {
            sw.enable_profiler(h.clone());
        }
        let handle = period.map(|period| {
            let mut fan = FanoutSink::new();
            fan.push(Box::new(JsonlSink::new(std::io::BufWriter::new(
                std::io::stdout(),
            ))));
            if let Some(ep) = &endpoint {
                fan.push(Box::new(ep.clone()));
            }
            // Chain: watchdog detection -> flight ring -> outputs,
            // with the signal poll outermost. The tee and the poll
            // forward every record unchanged, so the stdout bytes are
            // identical with or without them.
            let tee = FlightTee::new(flight.clone(), fan);
            let (wd, handle) = Watchdog::new(WatchdogConfig::default(), tee);
            let watch = SignalWatch {
                inner: wd,
                rec: flight.clone(),
                dir: flight_dir.clone(),
            };
            sw.enable_live_telemetry(period, 256, Box::new(watch));
            handle
        });
        sw.run_ports(ports, drain_deadline(spec, horizon), &plan);
        let epochs = sw.live_epochs_emitted();
        let spans = sw.live_spans_emitted();
        let r = sw.into_report();
        say(format_args!(
            "horizon {} us: offered {}, delivered {}, peak in-flight {}",
            spec.horizon_us * mult,
            r.offered_packets,
            r.delivered_packets,
            r.peak_in_flight_packets
        ));
        if period.is_some() {
            say(format_args!(
                "streamed {epochs} epoch deltas and {spans} lifecycle spans"
            ));
        }
        if let Some(handle) = handle {
            watchdog_events.extend(handle.events());
        }
        reports.push(r);
    }
    if let Some(h) = &hub {
        h.flush_output();
    }
    if opts.metrics_hold_ms > 0 && endpoint.is_some() {
        say(format_args!(
            "holding metrics endpoint for {} ms",
            opts.metrics_hold_ms
        ));
        std::thread::sleep(std::time::Duration::from_millis(opts.metrics_hold_ms));
    }
    if period.is_some() {
        // Always-on count, alarm or not: scrapers and log parsers get
        // the same line either way, matching the Prometheus
        // `rip_watchdog_alarms_total` family the endpoint exports.
        say(format_args!(
            "soak watchdogs: {} alarm(s) across both horizons",
            watchdog_events.len()
        ));
    }
    if !watchdog_events.is_empty() {
        for e in &watchdog_events {
            say(format_args!(
                "watchdog: {} epoch {} at {} ps: {:?}",
                e.source,
                e.epoch,
                e.at.as_ps(),
                e.kind
            ));
        }
        report_flight_dump(&flight, &flight_dir, "watchdog");
        return Err(format!(
            "{} watchdog alarm(s) fired during the soak",
            watchdog_events.len()
        ));
    }
    let (r1, r2) = (&reports[0], &reports[1]);
    if r2.offered_packets < 3 * r1.offered_packets {
        return Err(format!(
            "offered packets did not scale with the horizon: {} -> {}",
            r1.offered_packets, r2.offered_packets
        ));
    }
    if r2.peak_in_flight_packets > 2 * r1.peak_in_flight_packets + 64 {
        return Err(format!(
            "peak in-flight grew with the horizon: {} -> {}",
            r1.peak_in_flight_packets, r2.peak_in_flight_packets
        ));
    }
    say(format_args!(
        "soak OK: in-flight working set stays bounded at 4x the horizon"
    ));
    Ok(())
}

// --------------------------------------------------------------------
// `ripsim plane-worker` / `ripsim collect` — the fleet modes
// --------------------------------------------------------------------

/// Everything a fleet worker or collector derives from the shared spec
/// file — built identically on both sides, which is what makes the
/// worker's config echo comparable and the merged stream byte-identical
/// to the oracle's.
struct FleetParts {
    router: SpsRouter,
    workload: SpsWorkload,
    horizon: SimTime,
    live: LiveOptions,
    echo: Value,
}

/// Build the SPS router, workload, horizon and live-telemetry options
/// the fleet modes share. The fleet protocol *is* the live epoch
/// stream, so an epoch period (spec `epoch_ps` or `--epoch`) is
/// mandatory here, unlike in `soak`.
fn fleet_parts(spec: &SimSpec) -> Result<FleetParts, String> {
    spec.router.validate().map_err(|e| e.to_string())?;
    if !(0.0..=1.0).contains(&spec.load) {
        return Err(format!("load {} out of [0, 1]", spec.load));
    }
    if spec.horizon_us == 0 {
        return Err("horizon must be positive".into());
    }
    let period = match spec.epoch_ps {
        Some(0) => return Err(ConfigError::EpochZero.to_string()),
        Some(ps) => TimeDelta::from_ps(ps),
        None => {
            return Err(
                "fleet modes need an epoch period (--epoch or spec epoch_ps): \
                 the worker streams are the live epoch stream"
                    .into(),
            )
        }
    };
    let n = spec.router.ribbons;
    let workload = SpsWorkload {
        tm: spec.matrix.build(n)?,
        load: spec.load,
        fill: FiberFill::Uniform,
        sizes: spec.sizes.build(),
        process: spec.process.build(),
        flows: spec.flows,
        seed: spec.seed,
    };
    let router =
        SpsRouter::new(spec.router.clone(), SplitPattern::Striped).map_err(|e| e.to_string())?;
    Ok(FleetParts {
        router,
        workload,
        horizon: SimTime::from_ns(spec.horizon_us * 1000),
        live: LiveOptions {
            period,
            sample_one_in: 256,
        },
        echo: spec.to_value(),
    })
}

/// Command-line options of `ripsim plane-worker`.
struct WorkerOptions {
    worker: u64,
    planes: Vec<usize>,
    connect: Option<String>,
    out: Option<String>,
    prof: ProfileOptions,
}

/// Parse a `--planes` list: comma-separated plane indices, strictly
/// ascending (the typed [`ConfigError::PlaneSubset`] catches disorder
/// and range later; only non-numbers are a usage error here).
fn parse_planes(v: &str) -> Result<Vec<usize>, String> {
    v.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|e| format!("bad plane index {p:?}: {e}"))
        })
        .collect()
}

/// `ripsim plane-worker`: run the spec's SPS planes named by
/// `--planes` and push their framed telemetry stream to a collector
/// (`--connect`, with retries — the collector may still be binding) or
/// to a file (`--out`, for offline `collect --from` ingest).
fn run_plane_worker(spec: &SimSpec, opts: &WorkerOptions) -> Result<(), String> {
    let mut parts = fleet_parts(spec)?;
    let hub = build_profile_hub(&opts.prof)?;
    if let Some(h) = &hub {
        // The planes profile as `planeNN` into the hub; the worker
        // stream ships the recent records to the collector, which
        // re-labels them `wNN/planeNN` in its merged exposition.
        parts.router.set_profile_hub(h.clone());
    }
    let job = FleetJob {
        router: &parts.router,
        workload: &parts.workload,
        plan: &FaultPlan::default(),
        horizon: parts.horizon,
        live: parts.live,
        echo: parts.echo,
    };
    match (&opts.connect, &opts.out) {
        (Some(addr), None) => {
            // The collector may come up after the workers; retry the
            // connect for ~10 s before giving up.
            let mut stream = None;
            for attempt in 0..100 {
                match std::net::TcpStream::connect(addr) {
                    Ok(s) => {
                        stream = Some(s);
                        break;
                    }
                    Err(e) if attempt == 99 => {
                        return Err(format!("cannot connect to collector at {addr}: {e}"))
                    }
                    Err(_) => std::thread::sleep(std::time::Duration::from_millis(100)),
                }
            }
            // The retry loop above either set the stream or returned;
            // a typed error here keeps a logic slip from panicking an
            // otherwise-healthy fleet worker.
            let Some(stream) = stream else {
                return Err(format!("cannot connect to collector at {addr}"));
            };
            push_worker_stream(&job, opts.worker, &opts.planes, stream)
                .map_err(|e| e.to_string())?;
        }
        (None, Some(path)) => {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot write {path}: {e}"))?;
            let out = push_worker_stream(&job, opts.worker, &opts.planes, file)
                .map_err(|e| e.to_string())?;
            out.sync_all().map_err(|e| e.to_string())?;
        }
        _ => return Err("plane-worker needs exactly one of --connect or --out".into()),
    }
    if let Some(h) = &hub {
        h.flush_output();
    }
    eprintln!(
        "worker {}: pushed planes {:?} ({} us horizon)",
        opts.worker, opts.planes, spec.horizon_us
    );
    Ok(())
}

/// Command-line options of `ripsim collect`.
#[derive(Default)]
struct CollectOptions {
    /// Run the single-process `run_streamed` oracle instead of
    /// collecting — the byte-identity reference for the merged stream.
    oracle: bool,
    /// Ingest worker streams from files (offline mode, any order).
    from: Vec<String>,
    /// Accept worker pushes on this TCP address (`127.0.0.1:0` for an
    /// ephemeral port).
    listen: Option<String>,
    /// Write the bound listen port to this file — how workers (and CI)
    /// discover an ephemeral port.
    port_file: Option<String>,
    /// Give up when coverage is still incomplete after this long.
    timeout_ms: u64,
    /// Serve the merged stream's cumulative totals as a fleet-wide
    /// Prometheus scrape endpoint at this address.
    metrics: Option<String>,
    /// Write the bound metrics port to this file.
    metrics_port_file: Option<String>,
    /// Keep the metrics endpoint alive this long after the merge.
    metrics_hold_ms: u64,
    /// Bound each plane's staging buffer to this many records
    /// (forfeits byte-identity when it evicts; reported in the
    /// summary's `dropped_records`).
    stage_cap: Option<usize>,
    /// Wall-clock self-profiler options.
    prof: ProfileOptions,
}

/// The collector's output chain — identical to the oracle's, which is
/// what makes watchdog alarm positions (and the stream bytes around
/// them) line up: JSONL on buffered stdout, optionally teed into the
/// shared Prometheus endpoint, wrapped by the SLO watchdogs.
fn collect_sink(
    endpoint: &Option<SharedEndpoint>,
) -> (Watchdog<FanoutSink>, rip_telemetry::WatchdogHandle) {
    let mut fan = FanoutSink::new();
    fan.push(Box::new(JsonlSink::new(std::io::BufWriter::new(
        std::io::stdout(),
    ))));
    if let Some(ep) = endpoint {
        fan.push(Box::new(ep.clone()));
    }
    Watchdog::new(WatchdogConfig::default(), fan)
}

/// Report a lost worker: a typed `worker_lost` watchdog record into the
/// output chain (stdout JSONL + Prometheus alarm counter) plus a human
/// line on stderr. Only called on failure paths, where the collection
/// exits nonzero — the byte-identity contract only covers clean runs.
fn note_worker_lost(sink: &mut dyn TelemetrySink, worker: u64, why: &str) {
    eprintln!("collector: worker {worker} lost: {why}");
    let event = WatchdogEvent {
        source: "collector".into(),
        epoch: 0,
        at: SimTime::ZERO,
        kind: WatchdogKind::WorkerLost { worker },
    };
    sink.on_watchdog("collector", &event);
}

/// `ripsim collect`: reassemble worker streams into the
/// single-process telemetry stream and report — or, with `--oracle`,
/// produce that single-process stream directly for a byte diff.
fn run_collect(spec: &SimSpec, opts: &CollectOptions) -> Result<(), String> {
    let mut parts = fleet_parts(spec)?;
    let hub = build_profile_hub(&opts.prof)?;
    let endpoint = match &opts.metrics {
        Some(addr) => {
            let mut ep = MetricsEndpoint::bind(addr).map_err(|e| format!("metrics bind: {e}"))?;
            ep.set_build_info("ripsim", SERVICE_VERSION);
            if let Some(h) = &hub {
                ep.attach_profile_hub("ripsim", h.clone());
            }
            let port = ep.local_addr().port();
            eprintln!("metrics endpoint on port {port}");
            if let Some(path) = &opts.metrics_port_file {
                std::fs::write(path, format!("{port}\n"))
                    .map_err(|e| format!("metrics port file: {e}"))?;
            }
            Some(SharedEndpoint(Arc::new(Mutex::new(ep))))
        }
        None => None,
    };
    let (mut wd, handle) = collect_sink(&endpoint);

    let summary: String;
    if opts.oracle {
        if let Some(h) = &hub {
            // The oracle's in-process planes profile as `planeNN` —
            // the same labels the merged fleet exposition carries.
            parts.router.set_profile_hub(h.clone());
        }
        let report = parts.router.run_streamed(
            &parts.workload,
            parts.horizon,
            &FaultPlan::default(),
            parts.live,
            &mut wd,
        );
        summary = format!(
            "oracle: offered {} delivered {} over {} planes",
            report.offered, report.delivered, spec.router.switches
        );
    } else {
        let mut collector = Collector::new(parts.echo.clone(), spec.router.switches);
        if let Some(cap) = opts.stage_cap {
            collector = collector.with_plane_capacity(cap);
        }
        if let Some(h) = &hub {
            collector = collector.with_profiler(h.clone());
        }
        if !opts.from.is_empty() {
            for path in &opts.from {
                let file =
                    std::fs::File::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
                match collector.ingest(file) {
                    Ok(w) => eprintln!(
                        "collector: worker {w} committed from {path} ({} planes covered)",
                        collector.committed_planes().len()
                    ),
                    Err(e) => {
                        if let CollectError::WorkerTruncated { worker: Some(w) } = &e {
                            note_worker_lost(&mut wd, *w, &e.to_string());
                        }
                        return Err(format!("ingesting {path}: {e}"));
                    }
                }
            }
        } else if let Some(addr) = &opts.listen {
            let listener =
                FrameListener::bind(addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
            let port = listener.local_addr().port();
            eprintln!("collector listening on port {port}");
            if let Some(path) = &opts.port_file {
                std::fs::write(path, format!("{port}\n")).map_err(|e| format!("port file: {e}"))?;
            }
            let deadline = std::time::Instant::now()
                + std::time::Duration::from_millis(opts.timeout_ms.max(1));
            while !collector.missing_planes().is_empty() {
                if std::time::Instant::now() >= deadline {
                    return Err(format!(
                        "timed out after {} ms with planes {:?} still missing",
                        opts.timeout_ms,
                        collector.missing_planes()
                    ));
                }
                let accepted = listener
                    .poll_accept(std::time::Duration::from_millis(500))
                    .map_err(|e| format!("accept: {e}"))?;
                match accepted {
                    Some(stream) => match collector.ingest(stream) {
                        Ok(w) => eprintln!(
                            "collector: worker {w} committed ({}/{} planes covered)",
                            collector.committed_planes().len(),
                            spec.router.switches
                        ),
                        Err(e) => {
                            // A worker died mid-stream (or pushed a
                            // conflicting run). Nothing of it was
                            // committed; fail loudly instead of waiting
                            // for a replacement that may never come.
                            if let CollectError::WorkerTruncated { worker: Some(w) } = &e {
                                note_worker_lost(&mut wd, *w, &e.to_string());
                            }
                            return Err(e.to_string());
                        }
                    },
                    None => std::thread::sleep(std::time::Duration::from_millis(20)),
                }
            }
        } else {
            return Err("collect needs one of --oracle, --from or --listen".into());
        }
        let workers = collector.workers_done();
        let outcome = collector
            .finish(&parts.router, parts.horizon, &mut wd)
            .map_err(|e| e.to_string())?;
        if let Some(ep) = &endpoint {
            ep.lock().note_dropped_records(
                "sps",
                parts.router.drain_deadline(parts.horizon),
                outcome.dropped_records,
            );
        }
        summary = format!(
            "collector: workers={} records={} dropped_records={} offered {} delivered {}",
            workers,
            outcome.records,
            outcome.dropped_records,
            outcome.report.offered,
            outcome.report.delivered
        );
    }
    drop(wd); // flush the merged stream before reporting
    if let Some(h) = &hub {
        h.flush_output();
    }
    if opts.metrics_hold_ms > 0 && endpoint.is_some() {
        eprintln!("holding metrics endpoint for {} ms", opts.metrics_hold_ms);
        std::thread::sleep(std::time::Duration::from_millis(opts.metrics_hold_ms));
    }
    let events = handle.events();
    eprintln!("{summary} watchdog_alarms={}", events.len());
    if !events.is_empty() {
        for e in &events {
            eprintln!(
                "watchdog: {} epoch {} at {} ps: {:?}",
                e.source,
                e.epoch,
                e.at.as_ps(),
                e.kind
            );
        }
        return Err(format!("{} watchdog alarm(s) fired", events.len()));
    }
    Ok(())
}

// --------------------------------------------------------------------
// `ripsim trace` — JSONL telemetry export
// --------------------------------------------------------------------

/// Header line: schema tag plus the spec that produced the run.
#[derive(Serialize)]
struct MetaLine {
    record: String,
    schema: String,
    spec: SimSpec,
}

/// One switch milestone from the bounded event trace.
#[derive(Serialize)]
struct EventLine {
    record: String,
    t_ps: u64,
    event: rip_core::SwitchEvent,
}

/// Final value of a monotone counter.
#[derive(Serialize)]
struct CounterLine {
    record: String,
    name: String,
    value: u64,
}

/// Final value of a last-write-wins gauge.
#[derive(Serialize)]
struct GaugeLine {
    record: String,
    name: String,
    at_ps: u64,
    value: f64,
}

/// Summary of a log-bucketed histogram.
#[derive(Serialize)]
struct HistogramLine {
    record: String,
    name: String,
    count: u64,
    min: Option<f64>,
    max: Option<f64>,
    p50: Option<f64>,
    p99: Option<f64>,
}

/// One decimated point of a time series.
#[derive(Serialize)]
struct SeriesLine {
    record: String,
    name: String,
    t_ps: u64,
    value: f64,
}

/// Terminal record of a trace stream: carries the number of records
/// emitted before it plus the full metric totals, so a consumer can
/// both detect truncation and cross-check the per-record stream.
#[derive(Serialize)]
struct RunEndLine {
    record: String,
    t_ps: u64,
    records: u64,
    totals: rip_telemetry::MetricsRegistry,
}

/// JSONL writer for `ripsim trace`: buffers stdout, counts records,
/// and flushes even when the process unwinds early (broken pipe,
/// panic), so a consumer never silently loses the tail of a trace.
struct JsonlGuard {
    out: std::io::BufWriter<std::io::Stdout>,
    records: u64,
}

impl JsonlGuard {
    fn new() -> Self {
        JsonlGuard {
            out: std::io::BufWriter::new(std::io::stdout()),
            records: 0,
        }
    }

    fn emit<T: Serialize>(&mut self, line: &T) -> std::io::Result<()> {
        use std::io::Write;
        // Serialization cannot fail for these plain-data lines; only
        // the I/O below can (broken pipe, full disk), and that
        // propagates to a clean nonzero exit instead of a panic.
        let s = serde_json::to_string(line).expect("trace line serializes");
        self.out.write_all(s.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.records += 1;
        Ok(())
    }

    /// Close the stream with the terminal `run_end` record and flush.
    fn finish(
        mut self,
        at: SimTime,
        totals: rip_telemetry::MetricsRegistry,
    ) -> std::io::Result<()> {
        use std::io::Write;
        let records = self.records;
        self.emit(&RunEndLine {
            record: "run_end".into(),
            t_ps: at.as_ps(),
            records,
            totals,
        })?;
        self.out.flush()
    }
}

impl Drop for JsonlGuard {
    fn drop(&mut self) {
        use std::io::Write;
        let _ = self.out.flush();
    }
}

/// Run `spec` with event tracing on and stream the whole telemetry
/// surface — events, counters, gauges, histogram summaries, series —
/// to stdout as JSONL. Every timestamp is sim time (picoseconds), so
/// two same-seed runs produce byte-identical output.
fn run_trace(spec: &SimSpec, prof: &ProfileOptions) -> Result<(), String> {
    let horizon = SimTime::from_ns(spec.horizon_us * 1000);
    let ports = build_port_sources(spec, horizon)?;
    let mut sw = HbmSwitch::new(spec.router.clone()).map_err(|e| e.to_string())?;
    let hub = build_profile_hub(prof)?;
    if let Some(h) = &hub {
        sw.enable_profiler(h.clone());
    }
    sw.enable_trace(1 << 20);
    sw.run_ports(ports, drain_deadline(spec, horizon), &FaultPlan::default());
    // Copy the series out before consuming the switch for its report;
    // the emission order below is part of the JSONL contract.
    let events: Vec<(SimTime, rip_core::SwitchEvent)> = sw
        .trace()
        .expect("tracing enabled")
        .events()
        .copied()
        .collect();
    let hbm_points: Vec<(SimTime, f64)> = sw.hbm_occupancy().points().to_vec();
    let output_points: Vec<Vec<(SimTime, f64)>> = (0..spec.router.ribbons)
        .map(|o| sw.output_depth(o).points().to_vec())
        .collect();
    let r = sw.into_report();

    let mut out = JsonlGuard::new();
    let stream = (|| -> std::io::Result<()> {
        out.emit(&MetaLine {
            record: "meta".into(),
            schema: "rip-trace/v1".into(),
            spec: spec.clone(),
        })?;
        for &(at, event) in &events {
            out.emit(&EventLine {
                record: "event".into(),
                t_ps: at.as_ps(),
                event,
            })?;
        }
        for (name, &value) in r.metrics.counters() {
            out.emit(&CounterLine {
                record: "counter".into(),
                name: name.clone(),
                value,
            })?;
        }
        for (name, g) in r.metrics.gauges() {
            out.emit(&GaugeLine {
                record: "gauge".into(),
                name: name.clone(),
                at_ps: g.at.as_ps(),
                value: g.value,
            })?;
        }
        for (name, h) in r.metrics.histograms() {
            out.emit(&HistogramLine {
                record: "histogram".into(),
                name: name.clone(),
                count: h.count(),
                min: h.min(),
                max: h.max(),
                p50: h.quantile(0.5),
                p99: h.quantile(0.99),
            })?;
        }
        for &(t, value) in &hbm_points {
            out.emit(&SeriesLine {
                record: "series".into(),
                name: "hbm.frame_occupancy".into(),
                t_ps: t.as_ps(),
                value,
            })?;
        }
        for (o, points) in output_points.iter().enumerate() {
            let name = format!("out{o:02}.queue_depth_frames");
            for &(t, value) in points {
                out.emit(&SeriesLine {
                    record: "series".into(),
                    name: name.clone(),
                    t_ps: t.as_ps(),
                    value,
                })?;
            }
        }
        Ok(())
    })();
    stream.map_err(|e| format!("cannot write trace stream: {e}"))?;
    let end = r
        .departures
        .iter()
        .map(|d| d.time)
        .fold(SimTime::ZERO, SimTime::max);
    out.finish(end, r.metrics)
        .map_err(|e| format!("cannot write trace stream: {e}"))?;
    if let Some(h) = &hub {
        h.flush_output();
    }
    Ok(())
}

/// `ripsim trace --chrome <out.json>`: run the spec with command-level
/// tracing on and export a Chrome trace-event JSON file for Perfetto.
/// The file carries three process groups:
///
/// * `hbm` — one track per (channel, bank) with the ACT/RD/WR/PRE/REFsb
///   command timeline as duration events (ACT spans tRCD, PRE spans
///   tRP) plus a per-channel tFAW rolling-window lane;
/// * `frames` — per-output PFI frame lifecycles on four lanes
///   (fill / staggered write / staggered read / drain);
/// * one process per telemetry source (`switch`, `plane00`…) with
///   sampled packet-lifecycle spans and per-epoch activity lanes; the
///   SPS planes come from a second, plane-parallel pass over the same
///   configuration.
///
/// Every timestamp is sim time in integer picoseconds (rendered as
/// Perfetto microseconds), so two same-seed exports are byte-identical.
/// `--trace-window <start_ps>:<end_ps>` bounds the recorded interval.
fn run_trace_chrome(
    spec: &SimSpec,
    out_path: &str,
    window: TraceWindow,
    prof: &ProfileOptions,
) -> Result<(), String> {
    let horizon = SimTime::from_ns(spec.horizon_us * 1000);
    let ports = build_port_sources(spec, horizon)?;
    let period = match spec.epoch_ps {
        Some(0) => return Err(ConfigError::EpochZero.to_string()),
        Some(ps) => TimeDelta::from_ps(ps),
        None => TimeDelta::from_ps(2_000_000),
    };
    let hub = build_profile_hub(prof)?;

    // Device pass: HBM command timelines and frame lifecycles recorded
    // in-simulation, plus the staged live stream for packet spans.
    let mut sw = HbmSwitch::new(spec.router.clone()).map_err(|e| e.to_string())?;
    if let Some(h) = &hub {
        sw.enable_profiler(h.clone());
    }
    sw.enable_chrome_trace(window);
    let staged = SharedSink::new();
    sw.enable_live_telemetry(period, 64, Box::new(staged.clone()));
    sw.run_ports(ports, drain_deadline(spec, horizon), &FaultPlan::default());
    let mut rec = sw
        .take_chrome_trace()
        .expect("chrome trace was enabled above");
    let mut chrome = ChromeTraceSink::new(window);
    staged.take().replay_into(&mut chrome);

    // Plane pass: the same configuration through the plane-parallel SPS
    // router; its per-plane epoch streams become one activity lane per
    // plane in the export.
    let mut router =
        SpsRouter::new(spec.router.clone(), SplitPattern::Striped).map_err(|e| e.to_string())?;
    if let Some(h) = &hub {
        router.set_profile_hub(h.clone());
    }
    let w = SpsWorkload::uniform(spec.router.ribbons, spec.load, spec.seed);
    let opts = LiveOptions {
        period,
        sample_one_in: 64,
    };
    let mut sps_staged = rip_telemetry::MemorySink::new();
    router.run_streamed(&w, horizon, &FaultPlan::default(), opts, &mut sps_staged);
    sps_staged.replay_into(&mut chrome);

    rec.merge(chrome.into_recorder());
    let events = rec.len();
    let file =
        std::fs::File::create(out_path).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let mut out = std::io::BufWriter::new(file);
    rec.write_chrome_json(&mut out)
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    eprintln!(
        "wrote {events} trace events to {out_path} (window {}..{} ps); open in ui.perfetto.dev",
        window.start().as_ps(),
        window.end().as_ps()
    );
    if let Some(h) = &hub {
        h.flush_output();
    }
    Ok(())
}

// --------------------------------------------------------------------
// `ripsim flight-check` — post-mortem bundle validation
// --------------------------------------------------------------------

/// Field lookup on a parsed JSON object (the vendored `Value` has no
/// `get`).
fn jget<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    v.as_object()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, val)| val)
}

/// Validate a flight-recorder bundle: parses as JSON, carries the
/// `flight` record tag, a reason, build info, and the three content
/// arrays. Prints a one-line summary on success — the CI smoke's
/// schema gate, with no external JSON tooling needed.
fn flight_check(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let v = serde_json::parse(&text).map_err(|e| format!("{path} does not parse: {e}"))?;
    let record = jget(&v, "record").and_then(Value::as_str).unwrap_or("");
    if record != "flight" {
        return Err(format!("{path}: record is {record:?}, want \"flight\""));
    }
    let reason = jget(&v, "reason")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{path}: missing string field `reason`"))?
        .to_string();
    for key in ["service", "version"] {
        if jget(&v, key).and_then(Value::as_str).is_none() {
            return Err(format!("{path}: missing string field `{key}`"));
        }
    }
    for key in ["epochs_seen", "epochs_retained"] {
        let field = jget(&v, key).ok_or_else(|| format!("{path}: missing field `{key}`"))?;
        u64::from_value(field).map_err(|e| format!("{path}: field `{key}`: {e}"))?;
    }
    let mut counts = Vec::new();
    for key in ["epochs", "watchdogs", "profiles"] {
        let arr = jget(&v, key)
            .and_then(Value::as_array)
            .ok_or_else(|| format!("{path}: missing array field `{key}`"))?;
        counts.push(arr.len());
    }
    Ok(format!(
        "flight bundle OK: reason={reason} epochs={} watchdogs={} profiles={}",
        counts[0], counts[1], counts[2]
    ))
}

/// Build a uniform IMIX/Poisson trace for `cfg` at `load` over `horizon`.
fn uniform_trace(
    cfg: &RouterConfig,
    load: f64,
    horizon: SimTime,
    seed: u64,
) -> Vec<rip_traffic::Packet> {
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let streams: Vec<_> = (0..cfg.ribbons)
        .map(|port| {
            let mut g = PacketGenerator::new(
                port,
                cfg.port_rate(),
                load * tm.row_load(port),
                tm.row(port).to_vec(),
                SizeDistribution::Imix,
                ArrivalProcess::Poisson,
                256,
                rip_sim::rng::derive_seed(seed, port as u64),
            )
            .expect("valid generator");
            g.generate_until(horizon)
        })
        .collect();
    merge_streams(streams)
}

/// Delivered bits within `[from, to)`, from the departure log.
fn window_bits(
    r: &rip_core::SwitchReport,
    sizes: &HashMap<u64, DataSize>,
    from: SimTime,
    to: SimTime,
) -> u64 {
    r.departures
        .iter()
        .filter(|d| d.time >= from && d.time < to)
        .map(|d| sizes[&d.packet].bits())
        .sum()
}

/// The canned fault-injection demo: 1-of-4 HBM channels down at `T`,
/// recovered at `2T`, with the before/during/after timeline.
fn run_resilience() {
    let cfg = RouterConfig::resilience_small();
    let t_fault = SimTime::from_ns(150 * 1000); // T = 150 us
    let t_recover = SimTime::from_ns(300 * 1000); // 2T
    let horizon = SimTime::from_ns(600 * 1000); // 4T of arrivals
    let drain = SimTime::from_ns(2_400 * 1000);
    let plan = FaultPlan::new()
        .inject(t_fault, FaultKind::HbmChannelDown { channel: 3 })
        .recover(t_recover, FaultKind::HbmChannelDown { channel: 3 });
    plan.validate(&cfg).expect("demo plan valid");

    println!(
        "resilience demo: {} channels x {}, channel 3 down {} -> {}",
        cfg.channels(),
        cfg.hbm_geometry.channel_rate(),
        t_fault,
        t_recover
    );

    // Load just above the degraded capacity: the fault window shows the
    // ~3/4 cliff, the post-recovery window the backlog catch-up.
    let trace = uniform_trace(&cfg, 0.75, horizon, 42);
    let sizes: HashMap<u64, DataSize> = trace.iter().map(|p| (p.id, p.size)).collect();
    let sw = HbmSwitch::new(cfg.clone()).expect("valid config");
    let r = sw.run_with_faults(&trace, drain, &plan);

    let window_secs = 150e-6;
    let rate = |bits: u64| bits as f64 / window_secs / 1e9; // Gb/s
    let healthy = window_bits(&r, &sizes, SimTime::ZERO, t_fault);
    let degraded = window_bits(&r, &sizes, t_fault, t_recover);
    let catchup = window_bits(&r, &sizes, t_recover, SimTime::from_ns(450 * 1000));
    let settled = window_bits(&r, &sizes, SimTime::from_ns(450 * 1000), horizon);
    let mut t = Table::new(&["phase", "window", "delivered", "vs healthy"]);
    for (phase, window, bits) in [
        ("healthy", "0-150 us", healthy),
        ("1/4 channels down", "150-300 us", degraded),
        ("recovered, catch-up", "300-450 us", catchup),
        ("recovered, settled", "450-600 us", settled),
    ] {
        t.row(&[
            phase.into(),
            window.into(),
            format!("{:.1} Gb/s", rate(bits)),
            format!("{:.2}", bits as f64 / healthy as f64),
        ]);
    }
    t.print("delivered rate timeline (offered 0.75)");

    let mut t = Table::new(&["metric", "value"]);
    t.row(&["time degraded".into(), format!("{}", r.time_degraded)]);
    t.row(&["HBM capacity lost".into(), format!("{}", r.capacity_lost)]);
    t.row(&[
        "drops fault / congestion".into(),
        format!(
            "{} / {}",
            r.dropped_packets_fault, r.dropped_packets_congestion
        ),
    ]);
    t.row(&[
        "recovery drain".into(),
        r.recovery_drain
            .map_or("not reached".into(), |d| format!("{d}")),
    ]);
    t.print("degraded-mode accounting");

    // Under the degraded admissible load (≤ 0.7 of 3/4 capacity), the
    // same fault costs zero packets.
    let safe_load = 0.5;
    let trace = uniform_trace(&cfg, safe_load, horizon, 42);
    let sw = HbmSwitch::new(cfg).expect("valid config");
    let r = sw.run_with_faults(&trace, drain, &plan);
    println!(
        "at offered {:.2} (<= 0.7 of degraded capacity): {} fault drops, {} congestion drops, delivery {:.4}%",
        safe_load,
        r.dropped_packets_fault,
        r.dropped_packets_congestion,
        r.delivery_fraction * 100.0
    );
}

/// Read and parse a spec file, exiting with a usage error on failure.
fn load_spec(path: &str) -> SimSpec {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ripsim: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match serde_json::from_str(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ripsim: bad spec: {e}");
            std::process::exit(2);
        }
    }
}

/// Pull the value of `flag` off the argument iterator, exiting with a
/// usage error when it is missing.
fn require_value<'a>(rest: &mut std::slice::Iter<'a, String>, flag: &str, what: &str) -> &'a str {
    match rest.next() {
        Some(v) => v,
        None => {
            eprintln!("ripsim: {flag} needs {what}");
            std::process::exit(2);
        }
    }
}

/// Parse a `--threads` value. Range checking happens later through
/// [`RouterConfig::validate`] (0 and more-than-ports both get typed
/// [`ConfigError`]s); only non-numbers are a usage error here.
fn parse_threads(v: &str) -> usize {
    match v.parse::<usize>() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("ripsim: bad --threads value {v}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--version") {
        println!("{}", version_line("ripsim"));
        return;
    }
    if args.first().map(String::as_str) == Some("resilience") {
        run_resilience();
        return;
    }
    if args.first().map(String::as_str) == Some("flight-check") {
        let Some(path) = args.get(1) else {
            eprintln!("ripsim: flight-check needs a bundle path");
            std::process::exit(2);
        };
        match flight_check(path) {
            Ok(summary) => println!("{summary}"),
            Err(e) => {
                eprintln!("ripsim: flight-check FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if args.first().map(String::as_str) == Some("trace") {
        let mut spec_path: Option<&str> = None;
        let mut chrome: Option<&str> = None;
        let mut window: Option<TraceWindow> = None;
        let mut threads: Option<usize> = None;
        let mut prof = ProfileOptions::default();
        let mut rest = args[1..].iter();
        while let Some(a) = rest.next() {
            if a == "--threads" {
                threads = Some(parse_threads(require_value(
                    &mut rest,
                    "--threads",
                    "a worker-shard count",
                )));
            } else if a == "--profile" {
                prof.profile = true;
            } else if a == "--profile-out" {
                prof.profile_out = Some(require_value(&mut rest, "--profile-out", "a path").into());
            } else if a == "--chrome" {
                chrome = Some(require_value(&mut rest, "--chrome", "an output path"));
            } else if a == "--trace-window" {
                let v = require_value(&mut rest, "--trace-window", "<start_ps>:<end_ps>");
                match TraceWindow::parse(v) {
                    Ok(w) => window = Some(w),
                    Err(e) => {
                        eprintln!("ripsim: {}", ConfigError::from(e));
                        std::process::exit(2);
                    }
                }
            } else if spec_path.is_none() {
                spec_path = Some(a);
            } else {
                eprintln!("ripsim: unexpected argument {a}");
                std::process::exit(2);
            }
        }
        if window.is_some() && chrome.is_none() {
            eprintln!("ripsim: --trace-window only applies to --chrome exports");
            std::process::exit(2);
        }
        let mut spec = spec_path.map_or_else(SimSpec::example, load_spec);
        apply_threads(&mut spec, threads);
        let result = match chrome {
            Some(path) => {
                run_trace_chrome(&spec, path, window.unwrap_or_else(TraceWindow::all), &prof)
            }
            None => run_trace(&spec, &prof),
        };
        if let Err(e) = result {
            eprintln!("ripsim: {e}");
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("soak") {
        let mut spec_path: Option<&str> = None;
        let mut epoch: Option<u64> = None;
        let mut threads: Option<usize> = None;
        let mut opts = SoakOptions::default();
        let mut rest = args[1..].iter();
        while let Some(a) = rest.next() {
            if a == "--threads" {
                threads = Some(parse_threads(require_value(
                    &mut rest,
                    "--threads",
                    "a worker-shard count",
                )));
            } else if a == "--epoch" {
                let v = require_value(&mut rest, "--epoch", "a period in picoseconds");
                match v.parse::<u64>() {
                    Ok(ps) => epoch = Some(ps),
                    Err(e) => {
                        eprintln!("ripsim: bad --epoch value {v}: {e}");
                        std::process::exit(2);
                    }
                }
            } else if a == "--metrics" {
                opts.metrics = Some(require_value(&mut rest, "--metrics", "a bind address").into());
            } else if a == "--metrics-port-file" {
                opts.metrics_port_file =
                    Some(require_value(&mut rest, "--metrics-port-file", "a path").into());
            } else if a == "--metrics-hold-ms" {
                let v = require_value(&mut rest, "--metrics-hold-ms", "milliseconds");
                match v.parse::<u64>() {
                    Ok(ms) => opts.metrics_hold_ms = ms,
                    Err(e) => {
                        eprintln!("ripsim: bad --metrics-hold-ms value {v}: {e}");
                        std::process::exit(2);
                    }
                }
            } else if a == "--inject-channel-fault" {
                let v = require_value(&mut rest, "--inject-channel-fault", "a channel index");
                match v.parse::<usize>() {
                    Ok(ch) => opts.inject_channel_fault = Some(ch),
                    Err(e) => {
                        eprintln!("ripsim: bad --inject-channel-fault value {v}: {e}");
                        std::process::exit(2);
                    }
                }
            } else if a == "--checkpoint-every" {
                let v = require_value(&mut rest, "--checkpoint-every", "an epoch count");
                match v.parse::<u64>() {
                    Ok(n) => opts.checkpoint_every = Some(n),
                    Err(e) => {
                        eprintln!("ripsim: bad --checkpoint-every value {v}: {e}");
                        std::process::exit(2);
                    }
                }
            } else if a == "--checkpoint-path" {
                opts.checkpoint_path =
                    Some(require_value(&mut rest, "--checkpoint-path", "a path").into());
            } else if a == "--resume" {
                opts.resume = Some(require_value(&mut rest, "--resume", "a snapshot path").into());
            } else if a == "--profile" {
                opts.prof.profile = true;
            } else if a == "--profile-out" {
                opts.prof.profile_out =
                    Some(require_value(&mut rest, "--profile-out", "a path").into());
            } else if a == "--flight-dir" {
                opts.flight_dir =
                    Some(require_value(&mut rest, "--flight-dir", "a directory").into());
            } else if spec_path.is_none() {
                spec_path = Some(a);
            } else {
                eprintln!("ripsim: unexpected argument {a}");
                std::process::exit(2);
            }
        }
        let mut spec = spec_path.map_or_else(SimSpec::example, load_spec);
        if epoch.is_some() {
            spec.epoch_ps = epoch;
        }
        apply_threads(&mut spec, threads);
        if let Err(e) = run_soak(&spec, &opts) {
            eprintln!("ripsim: soak FAILED: {e}");
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("plane-worker") {
        let mut spec_path: Option<&str> = None;
        let mut epoch: Option<u64> = None;
        let mut worker: Option<u64> = None;
        let mut planes: Option<Vec<usize>> = None;
        let mut wopts = WorkerOptions {
            worker: 0,
            planes: Vec::new(),
            connect: None,
            out: None,
            prof: ProfileOptions::default(),
        };
        let mut rest = args[1..].iter();
        while let Some(a) = rest.next() {
            if a == "--worker" {
                let v = require_value(&mut rest, "--worker", "a worker id");
                match v.parse::<u64>() {
                    Ok(w) => worker = Some(w),
                    Err(e) => {
                        eprintln!("ripsim: bad --worker value {v}: {e}");
                        std::process::exit(2);
                    }
                }
            } else if a == "--planes" {
                let v = require_value(&mut rest, "--planes", "a comma-separated plane list");
                match parse_planes(v) {
                    Ok(p) => planes = Some(p),
                    Err(e) => {
                        eprintln!("ripsim: {e}");
                        std::process::exit(2);
                    }
                }
            } else if a == "--epoch" {
                let v = require_value(&mut rest, "--epoch", "a period in picoseconds");
                match v.parse::<u64>() {
                    Ok(ps) => epoch = Some(ps),
                    Err(e) => {
                        eprintln!("ripsim: bad --epoch value {v}: {e}");
                        std::process::exit(2);
                    }
                }
            } else if a == "--connect" {
                wopts.connect = Some(require_value(&mut rest, "--connect", "an address").into());
            } else if a == "--out" {
                wopts.out = Some(require_value(&mut rest, "--out", "a path").into());
            } else if a == "--profile" {
                wopts.prof.profile = true;
            } else if a == "--profile-out" {
                wopts.prof.profile_out =
                    Some(require_value(&mut rest, "--profile-out", "a path").into());
            } else if spec_path.is_none() {
                spec_path = Some(a);
            } else {
                eprintln!("ripsim: unexpected argument {a}");
                std::process::exit(2);
            }
        }
        let Some(path) = spec_path else {
            eprintln!("ripsim: plane-worker needs a spec file");
            std::process::exit(2);
        };
        let (Some(worker), Some(planes)) = (worker, planes) else {
            eprintln!("ripsim: plane-worker needs --worker and --planes");
            std::process::exit(2);
        };
        wopts.worker = worker;
        wopts.planes = planes;
        let mut spec = load_spec(path);
        if epoch.is_some() {
            spec.epoch_ps = epoch;
        }
        if let Err(e) = run_plane_worker(&spec, &wopts) {
            eprintln!("ripsim: plane-worker FAILED: {e}");
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("collect") {
        let mut spec_path: Option<&str> = None;
        let mut epoch: Option<u64> = None;
        let mut copts = CollectOptions {
            timeout_ms: 30_000,
            ..CollectOptions::default()
        };
        let mut rest = args[1..].iter();
        while let Some(a) = rest.next() {
            if a == "--oracle" {
                copts.oracle = true;
            } else if a == "--from" {
                copts
                    .from
                    .push(require_value(&mut rest, "--from", "a stream file").into());
            } else if a == "--listen" {
                copts.listen = Some(require_value(&mut rest, "--listen", "a bind address").into());
            } else if a == "--port-file" {
                copts.port_file = Some(require_value(&mut rest, "--port-file", "a path").into());
            } else if a == "--timeout-ms" {
                let v = require_value(&mut rest, "--timeout-ms", "milliseconds");
                match v.parse::<u64>() {
                    Ok(ms) => copts.timeout_ms = ms,
                    Err(e) => {
                        eprintln!("ripsim: bad --timeout-ms value {v}: {e}");
                        std::process::exit(2);
                    }
                }
            } else if a == "--epoch" {
                let v = require_value(&mut rest, "--epoch", "a period in picoseconds");
                match v.parse::<u64>() {
                    Ok(ps) => epoch = Some(ps),
                    Err(e) => {
                        eprintln!("ripsim: bad --epoch value {v}: {e}");
                        std::process::exit(2);
                    }
                }
            } else if a == "--metrics" {
                copts.metrics =
                    Some(require_value(&mut rest, "--metrics", "a bind address").into());
            } else if a == "--metrics-port-file" {
                copts.metrics_port_file =
                    Some(require_value(&mut rest, "--metrics-port-file", "a path").into());
            } else if a == "--metrics-hold-ms" {
                let v = require_value(&mut rest, "--metrics-hold-ms", "milliseconds");
                match v.parse::<u64>() {
                    Ok(ms) => copts.metrics_hold_ms = ms,
                    Err(e) => {
                        eprintln!("ripsim: bad --metrics-hold-ms value {v}: {e}");
                        std::process::exit(2);
                    }
                }
            } else if a == "--profile" {
                copts.prof.profile = true;
            } else if a == "--profile-out" {
                copts.prof.profile_out =
                    Some(require_value(&mut rest, "--profile-out", "a path").into());
            } else if a == "--stage-cap" {
                let v = require_value(&mut rest, "--stage-cap", "a record count");
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => copts.stage_cap = Some(n),
                    Ok(_) => {
                        eprintln!("ripsim: --stage-cap must be positive");
                        std::process::exit(2);
                    }
                    Err(e) => {
                        eprintln!("ripsim: bad --stage-cap value {v}: {e}");
                        std::process::exit(2);
                    }
                }
            } else if spec_path.is_none() {
                spec_path = Some(a);
            } else {
                eprintln!("ripsim: unexpected argument {a}");
                std::process::exit(2);
            }
        }
        let Some(path) = spec_path else {
            eprintln!("ripsim: collect needs a spec file");
            std::process::exit(2);
        };
        let mut spec = load_spec(path);
        if epoch.is_some() {
            spec.epoch_ps = epoch;
        }
        if let Err(e) = run_collect(&spec, &copts) {
            eprintln!("ripsim: collect FAILED: {e}");
            std::process::exit(1);
        }
        return;
    }
    if args.iter().any(|a| a == "--example-spec") {
        println!(
            "{}",
            serde_json::to_string_pretty(&SimSpec::example()).expect("spec serializes")
        );
        return;
    }
    let Some(path) = args.first() else {
        eprintln!(
            "usage: ripsim <spec.json> | \
             ripsim trace [spec.json] [--threads <n>] [--chrome <out.json>] \
             [--trace-window <a>:<b>] [--profile [--profile-out <path>]] | \
             ripsim soak [spec.json] [--threads <n>] [--epoch <ps>] [--metrics <addr>] \
             [--metrics-port-file <path>] [--metrics-hold-ms <ms>] \
             [--inject-channel-fault <ch>] [--checkpoint-every <epochs>] \
             [--checkpoint-path <path>] [--resume <path>] \
             [--profile [--profile-out <path>]] [--flight-dir <dir>] | \
             ripsim plane-worker <spec.json> --worker <id> --planes <i,j,..> \
             [--epoch <ps>] (--connect <addr> | --out <path>) \
             [--profile [--profile-out <path>]] | \
             ripsim collect <spec.json> [--epoch <ps>] (--oracle | --from <file>... | \
             --listen <addr> [--port-file <path>] [--timeout-ms <ms>]) \
             [--metrics <addr>] [--metrics-port-file <path>] \
             [--metrics-hold-ms <ms>] [--stage-cap <n>] \
             [--profile [--profile-out <path>]] | \
             ripsim flight-check <bundle.json> | \
             ripsim --example-spec | ripsim --version | ripsim resilience"
        );
        std::process::exit(2);
    };
    let spec = load_spec(path);
    if let Err(e) = run(&spec) {
        eprintln!("ripsim: {e}");
        std::process::exit(1);
    }
}
