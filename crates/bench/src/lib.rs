//! Shared helpers for the experiment-reproduction binary and the
//! Criterion benches: workload builders and table printing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;

use rip_core::RouterConfig;

/// The workspace version every binary reports — the same string
/// `MetricsServer::set_build_info` exposes as the `_build_info` gauge's
/// `version` label, so a scrape and a `--version` invocation can be
/// cross-checked against each other.
pub const SERVICE_VERSION: &str = env!("CARGO_PKG_VERSION");

/// The one-line `--version` banner for `service` (`ripsim`, `repro`).
/// Keep this the single source of the format: the CLIs print it and the
/// metrics endpoints derive their build-info labels from the same
/// [`SERVICE_VERSION`].
pub fn version_line(service: &str) -> String {
    format!("{service} {SERVICE_VERSION} (rip-bench workspace build)")
}
use rip_traffic::{
    merge_streams, ArrivalProcess, BoundedSource, MergedSource, Packet, PacketGenerator,
    SizeDistribution, TrafficMatrix,
};
use rip_units::SimTime;

/// Build an arrival-ordered per-port trace for an HBM switch: one
/// generator per port, loads scaled by `load` on top of the matrix's
/// own row loads.
pub fn switch_trace(
    cfg: &RouterConfig,
    tm: &TrafficMatrix,
    load: f64,
    sizes: SizeDistribution,
    process: ArrivalProcess,
    horizon: SimTime,
    seed: u64,
) -> Vec<Packet> {
    let streams: Vec<Vec<Packet>> = (0..cfg.ribbons)
        .map(|i| {
            let row_load = (load * tm.row_load(i)).min(1.0);
            if row_load <= 0.0 {
                return Vec::new();
            }
            let mut g = PacketGenerator::new(
                i,
                cfg.port_rate(),
                row_load,
                tm.row(i).to_vec(),
                sizes.clone(),
                process,
                256,
                rip_sim::rng::derive_seed(seed, i as u64),
            )
            .expect("valid generator");
            g.generate_until(horizon)
        })
        .collect();
    merge_streams(streams)
}

/// Convenience: a uniform IMIX Poisson trace.
pub fn uniform_trace(cfg: &RouterConfig, load: f64, horizon: SimTime, seed: u64) -> Vec<Packet> {
    switch_trace(
        cfg,
        &TrafficMatrix::uniform(cfg.ribbons, 1.0),
        load,
        SizeDistribution::Imix,
        ArrivalProcess::Poisson,
        horizon,
        seed,
    )
}

/// Pull-based counterpart of [`switch_trace`]: a merged source yielding
/// the identical packet sequence without materializing the trace (one
/// generator per port makes `(arrival, input, id)` unique, so the merge
/// order equals the batch sort order).
pub fn switch_source(
    cfg: &RouterConfig,
    tm: &TrafficMatrix,
    load: f64,
    sizes: SizeDistribution,
    process: ArrivalProcess,
    horizon: SimTime,
    seed: u64,
) -> MergedSource<BoundedSource<PacketGenerator>> {
    MergedSource::new(switch_port_sources(
        cfg, tm, load, sizes, process, horizon, seed,
    ))
}

/// The per-port sources behind [`switch_source`], unmerged — what
/// engine-selecting entry points ([`rip_core::HbmSwitch::run_ports`])
/// consume: the sequential engine merges them on the calling thread,
/// the sharded engine partitions them across worker shards. Same
/// generators, same seeds, same packet sequence either way.
pub fn switch_port_sources(
    cfg: &RouterConfig,
    tm: &TrafficMatrix,
    load: f64,
    sizes: SizeDistribution,
    process: ArrivalProcess,
    horizon: SimTime,
    seed: u64,
) -> Vec<BoundedSource<PacketGenerator>> {
    (0..cfg.ribbons)
        .filter_map(|i| {
            let row_load = (load * tm.row_load(i)).min(1.0);
            if row_load <= 0.0 {
                return None;
            }
            let g = PacketGenerator::new(
                i,
                cfg.port_rate(),
                row_load,
                tm.row(i).to_vec(),
                sizes.clone(),
                process,
                256,
                rip_sim::rng::derive_seed(seed, i as u64),
            )
            .expect("valid generator");
            Some(BoundedSource::new(g, horizon))
        })
        .collect()
}

/// Uniform-workload counterpart of [`switch_port_sources`].
pub fn uniform_port_sources(
    cfg: &RouterConfig,
    load: f64,
    horizon: SimTime,
    seed: u64,
) -> Vec<BoundedSource<PacketGenerator>> {
    switch_port_sources(
        cfg,
        &TrafficMatrix::uniform(cfg.ribbons, 1.0),
        load,
        SizeDistribution::Imix,
        ArrivalProcess::Poisson,
        horizon,
        seed,
    )
}

/// Pull-based counterpart of [`uniform_trace`].
pub fn uniform_source(
    cfg: &RouterConfig,
    load: f64,
    horizon: SimTime,
    seed: u64,
) -> MergedSource<BoundedSource<PacketGenerator>> {
    switch_source(
        cfg,
        &TrafficMatrix::uniform(cfg.ribbons, 1.0),
        load,
        SizeDistribution::Imix,
        ArrivalProcess::Poisson,
        horizon,
        seed,
    )
}

/// A fixed-width text table writer for the repro binary's output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render the table to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut s = String::from("| ");
            for i in 0..cols {
                s.push_str(&format!("{:w$}", cells[i], w = widths[i]));
                s.push_str(" | ");
            }
            s.trim_end().to_string()
        };
        let mut out = line(&self.headers);
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        out.push_str(&line(&sep));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Print with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===");
        print!("{}", self.render());
    }
}

/// Format a float with the given precision.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_builder_produces_ordered_traffic() {
        let cfg = RouterConfig::small();
        let t = uniform_trace(&cfg, 0.5, SimTime::from_ns(20_000), 1);
        assert!(!t.is_empty());
        assert!(t.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn source_builder_matches_trace_builder() {
        use rip_traffic::PacketSource as _;
        let cfg = RouterConfig::small();
        let h = SimTime::from_ns(20_000);
        let batch = uniform_trace(&cfg, 0.5, h, 1);
        let streamed: Vec<Packet> = uniform_source(&cfg, 0.5, h, 1).packets().collect();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("name"));
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new(&["a"]);
        t.row(&["x".into(), "y".into()]);
    }
}
