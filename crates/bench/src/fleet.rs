//! The fleet collector/worker driver: run SPS plane subsets in
//! separate processes and reassemble one byte-identical telemetry
//! stream and report.
//!
//! ## Wire protocol (`rip-fleet/v1`)
//!
//! A worker pushes one length-framed JSONL stream (every frame is one
//! line without its newline, see
//! [`rip_telemetry::LengthFramedWriter`]):
//!
//! 1. `{"record":"fleet_hello","schema":"rip-fleet/v1","worker":W,
//!    "planes":[..],"echo":<config echo>}` — the worker's identity,
//!    its owned plane subset (strictly ascending), and the exact spec
//!    it ran, which the collector compares against its own;
//! 2. for each owned plane, ascending: the plane's telemetry lines
//!    exactly as [`rip_telemetry::JsonlSink`] emits them (sources
//!    already renamed `planeNN`), then
//!    `{"record":"plane_done","plane":N,"fe_packets":..,"fe_bytes":..,
//!    "report":<SwitchReport>}` carrying the results the single-process
//!    runner would have gotten from the plane's thread join;
//! 3. when the worker profiled itself, its recent wall-clock profile
//!    records as `{"record":"profile","data":<ProfileRecord>}` control
//!    lines — a bounded best-effort sidecar the collector routes into
//!    its own [`rip_telemetry::ProfileHub`] (source renamed
//!    `wNN/<source>`) and that never enters the deterministic merge;
//! 4. `{"record":"fleet_end","worker":W}`.
//!
//! The collector buffers a stream's contribution and **commits it only
//! at `fleet_end`**: a worker that dies mid-stream leaves no partial
//! state behind, so its replacement (or reconnect) re-sends the whole
//! subset and the merge is unaffected. EOF before `fleet_end` is the
//! typed [`CollectError::WorkerTruncated`].
//!
//! ## Why the merged output is byte-identical to the oracle
//!
//! `SpsRouter::run_streamed` replays per-plane staging buffers in
//! ascending plane order and closes with an `sps` `run_end` carrying
//! the stitched registry. Plane simulations are fully self-contained,
//! so each worker's staged records equal the oracle's for its planes;
//! [`Collector::finish`] replays the committed planes in the same
//! ascending order through the caller's sink and closes with
//! [`rip_core::SpsRouter::stitch_report`] over the pushed per-plane
//! results — the same fold, in the same order, over the same values.
//! Line `records` counters are recomputed by the consumer's own
//! `JsonlSink` (the wire deliberately does not carry them: no single
//! worker can know how many lines the planes before its own
//! contributed).

use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Read, Write};

use rip_core::SwitchReport;
use rip_core::{ConfigError, FaultPlan, LiveOptions, SpsReport, SpsRouter, SpsWorkload};
use rip_telemetry::{
    parse_plane_source, parse_sink_line, plane_source_name, prof_add, prof_lap, prof_now,
    EngineProfiler, FrameError, JsonlSink, LengthFramedReader, LengthFramedWriter, LineError,
    ParsedLine, Phase, PlaneMerge, ProfileHub, ProfileRecord, SinkRecord, TelemetrySink,
};
use rip_units::{DataSize, SimTime};
use serde::{Deserialize, Serialize, Value};

/// The wire schema tag every `fleet_hello` must carry.
pub const FLEET_SCHEMA: &str = "rip-fleet/v1";

/// Everything a worker or collector needs to know about the run —
/// built identically on both sides from the shared spec file.
pub struct FleetJob<'a> {
    /// The router (both sides construct it from the same config).
    pub router: &'a SpsRouter,
    /// The workload.
    pub workload: &'a SpsWorkload,
    /// Fault plan (usually empty for fleet runs).
    pub plan: &'a FaultPlan,
    /// Arrival horizon.
    pub horizon: SimTime,
    /// Live-telemetry options — the fleet protocol *is* the live
    /// stream, so these are mandatory.
    pub live: LiveOptions,
    /// JSON echo of the originating spec; the collector refuses
    /// workers whose echo differs (they simulated a different run).
    pub echo: Value,
}

/// Everything that can go wrong pushing or collecting a fleet stream.
#[derive(Debug)]
pub enum CollectError {
    /// The plane subset or router configuration was rejected.
    Config(ConfigError),
    /// Plain I/O failure (connect, write, accept).
    Io(io::Error),
    /// The framed stream was malformed (truncated or oversize frame).
    Frame(FrameError),
    /// A frame held bytes that do not parse as a protocol line.
    Line(LineError),
    /// A stream violated the protocol (wrong first record, bad schema,
    /// a plane outside the worker's declared subset, ...).
    Protocol(String),
    /// A worker's config echo differs from the collector's spec.
    EchoMismatch {
        /// The offending worker id.
        worker: u64,
    },
    /// Two committed workers both claimed a plane.
    PlaneConflict {
        /// The doubly-claimed plane.
        plane: usize,
        /// The worker whose commit collided.
        worker: u64,
    },
    /// `finish` was called with planes still missing.
    Coverage {
        /// Planes no committed worker delivered.
        missing: Vec<usize>,
    },
    /// A stream ended before its `fleet_end` — the worker died or the
    /// connection was cut. Nothing from the stream was committed.
    WorkerTruncated {
        /// The worker id, when the stream got far enough to say it.
        worker: Option<u64>,
    },
}

impl std::fmt::Display for CollectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectError::Config(e) => write!(f, "{e}"),
            CollectError::Io(e) => write!(f, "fleet I/O: {e}"),
            CollectError::Frame(e) => write!(f, "fleet framing: {e}"),
            CollectError::Line(e) => write!(f, "fleet line: {e}"),
            CollectError::Protocol(msg) => write!(f, "fleet protocol: {msg}"),
            CollectError::EchoMismatch { worker } => write!(
                f,
                "worker {worker} ran a different spec (config echo mismatch)"
            ),
            CollectError::PlaneConflict { plane, worker } => write!(
                f,
                "worker {worker} claims plane {plane}, already delivered by another worker"
            ),
            CollectError::Coverage { missing } => {
                write!(f, "no worker delivered planes {missing:?}")
            }
            CollectError::WorkerTruncated { worker } => match worker {
                Some(w) => write!(f, "worker {w}'s stream ended before fleet_end"),
                None => write!(f, "a worker stream ended before its fleet_hello completed"),
            },
        }
    }
}

impl std::error::Error for CollectError {}

impl From<ConfigError> for CollectError {
    fn from(e: ConfigError) -> Self {
        CollectError::Config(e)
    }
}

impl From<io::Error> for CollectError {
    fn from(e: io::Error) -> Self {
        CollectError::Io(e)
    }
}

impl From<FrameError> for CollectError {
    fn from(e: FrameError) -> Self {
        CollectError::Frame(e)
    }
}

impl From<LineError> for CollectError {
    fn from(e: LineError) -> Self {
        CollectError::Line(e)
    }
}

/// Per-plane results carried by a `plane_done` line — exactly what the
/// single-process runner gets from the plane's thread join.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PlaneDoneMsg {
    plane: u64,
    fe_packets: u64,
    fe_bytes: DataSize,
    report: SwitchReport,
}

/// Run `planes` of the job and push the framed fleet stream into
/// `out`. Returns the writer (flushed) so a caller can keep the
/// underlying connection. This is the whole worker: everything else is
/// argument parsing.
pub fn push_worker_stream<W: Write>(
    job: &FleetJob<'_>,
    worker: u64,
    planes: &[usize],
    out: W,
) -> Result<W, CollectError> {
    let runs =
        job.router
            .run_planes(job.workload, job.horizon, job.plan, Some(job.live), planes)?;
    let mut framed = LengthFramedWriter::new(out);
    let planes_u64: Vec<u64> = planes.iter().map(|&p| p as u64).collect();
    writeln!(
        framed,
        "{{\"record\":\"fleet_hello\",\"schema\":\"{}\",\"worker\":{},\"planes\":{},\"echo\":{}}}",
        FLEET_SCHEMA,
        worker,
        serde_json::to_string(&planes_u64).expect("planes serialize"),
        serde_json::to_string(&job.echo).expect("echo serializes"),
    )?;
    for run in runs {
        {
            // The sink writes the plane's lines through the framer —
            // byte-for-byte the lines the oracle's merged stream holds
            // for this plane (except `run_end.records`, recomputed by
            // the collector's sink).
            let mut sink = JsonlSink::new(&mut framed);
            run.staged
                .replay_renamed(&plane_source_name(run.plane), &mut sink);
        }
        let done = PlaneDoneMsg {
            plane: run.plane as u64,
            fe_packets: run.fe_dropped_packets,
            fe_bytes: run.fe_dropped,
            report: run.report,
        };
        writeln!(
            framed,
            "{{\"record\":\"plane_done\",\"plane\":{},\"fe_packets\":{},\"fe_bytes\":{},\"report\":{}}}",
            done.plane,
            done.fe_packets,
            serde_json::to_string(&done.fe_bytes).expect("size serializes"),
            serde_json::to_string(&done.report).expect("report serializes"),
        )?;
    }
    // Wall-clock sidecar: when the router carries a profile hub (the
    // worker ran with `--profile`), ship its recent records as control
    // lines. The collector feeds them into its own hub — they are not
    // staged, not merged, and cannot perturb the deterministic stream.
    if let Some(hub) = job.router.profile_hub() {
        for rec in hub.recent() {
            writeln!(
                framed,
                "{{\"record\":\"profile\",\"data\":{}}}",
                serde_json::to_string(&rec).expect("profile record serializes"),
            )?;
        }
    }
    writeln!(framed, "{{\"record\":\"fleet_end\",\"worker\":{worker}}}")?;
    framed.flush()?;
    Ok(framed.into_inner())
}

/// One committed plane: its telemetry records and join results.
#[derive(Debug, Clone)]
struct PlaneContribution {
    worker: u64,
    fe_packets: u64,
    fe_bytes: DataSize,
    report: SwitchReport,
}

/// The merged outcome of a completed collection.
pub struct FleetOutcome {
    /// The stitched router-level report — byte-identical to the
    /// single-process run's.
    pub report: SpsReport,
    /// Telemetry records replayed into the sink (excluding the final
    /// `sps` `run_end` the replay closes with).
    pub records: u64,
    /// Records evicted by bounded staging (always 0 unbounded; a
    /// nonzero value means the merged stream is NOT byte-complete).
    pub dropped_records: u64,
}

/// Reassembles worker streams into the single-process telemetry stream
/// and report. Feed each worker's stream to [`Collector::ingest`]
/// (any order, any interleaving of workers across streams), then call
/// [`Collector::finish`] once every plane is covered.
pub struct Collector {
    echo: Value,
    switches: usize,
    capacity: Option<usize>,
    merge: PlaneMerge,
    committed: BTreeMap<usize, PlaneContribution>,
    workers: BTreeSet<u64>,
    prof: Option<EngineProfiler>,
}

fn get<'a>(v: &'a Value, name: &str) -> Option<&'a Value> {
    v.as_object()?
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, val)| val)
}

fn get_u64(v: &Value, name: &str, record: &str) -> Result<u64, CollectError> {
    let field = get(v, name)
        .ok_or_else(|| CollectError::Protocol(format!("{record} line lacks `{name}`")))?;
    u64::from_value(field)
        .map_err(|e| CollectError::Protocol(format!("{record} line field `{name}`: {e}")))
}

impl Collector {
    /// A collector for a router with `switches` planes, expecting
    /// workers whose config echo equals `echo`.
    pub fn new(echo: Value, switches: usize) -> Self {
        Collector {
            echo,
            switches,
            capacity: None,
            merge: PlaneMerge::new(),
            committed: BTreeMap::new(),
            workers: BTreeSet::new(),
            prof: None,
        }
    }

    /// Attach the wall-clock self-profiler: ingest laps frame decode
    /// and staging, finish laps the merge replay, flushing into `hub`
    /// under source `collect`. Worker-pushed `profile` control lines
    /// are routed into the same hub with a `wNN/` source prefix.
    /// Profiling never alters the merged stream or the report.
    pub fn with_profiler(mut self, hub: ProfileHub) -> Self {
        self.prof = Some(EngineProfiler::new(hub, "collect"));
        self
    }

    /// Bound each plane's staging buffer to `capacity` records (oldest
    /// evicted, counted in [`FleetOutcome::dropped_records`]). Bounded
    /// staging keeps scrape-only collectors in O(capacity) memory but
    /// forfeits the byte-identity guarantee when it evicts.
    pub fn with_plane_capacity(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity);
        self.merge = PlaneMerge::with_plane_capacity(capacity);
        self
    }

    /// Planes committed so far, ascending.
    pub fn committed_planes(&self) -> Vec<usize> {
        self.committed.keys().copied().collect()
    }

    /// Planes no committed worker has delivered yet, ascending.
    pub fn missing_planes(&self) -> Vec<usize> {
        (0..self.switches)
            .filter(|p| !self.committed.contains_key(p))
            .collect()
    }

    /// Workers whose streams committed.
    pub fn workers_done(&self) -> usize {
        self.workers.len()
    }

    /// Records staged across all committed planes.
    pub fn staged_records(&self) -> usize {
        self.merge.staged_records()
    }

    /// Consume one worker stream to completion; returns the worker id
    /// once its `fleet_end` commits the contribution. On any error the
    /// stream's partial contribution is discarded — the worker (or its
    /// replacement) can push again.
    pub fn ingest<R: Read>(&mut self, stream: R) -> Result<u64, CollectError> {
        let mut reader = LengthFramedReader::new(stream);
        // --- fleet_hello ------------------------------------------------
        let mut t0 = prof_now(&self.prof);
        let first = match reader.read_frame()? {
            Some(frame) => frame,
            None => return Err(CollectError::WorkerTruncated { worker: None }),
        };
        let line = String::from_utf8(first)
            .map_err(|_| CollectError::Protocol("frame is not UTF-8".into()))?;
        let hello = match parse_sink_line(&line)? {
            ParsedLine::Control { kind, value } if kind == "fleet_hello" => value,
            other => {
                return Err(CollectError::Protocol(format!(
                    "stream must open with fleet_hello, got {other:?}"
                )))
            }
        };
        prof_lap(&mut self.prof, Phase::FrameDecode, &mut t0);
        let schema = get(&hello, "schema").and_then(Value::as_str).unwrap_or("");
        if schema != FLEET_SCHEMA {
            return Err(CollectError::Protocol(format!(
                "unsupported fleet schema {schema:?} (want {FLEET_SCHEMA:?})"
            )));
        }
        let worker = get_u64(&hello, "worker", "fleet_hello")?;
        let echo = get(&hello, "echo")
            .ok_or_else(|| CollectError::Protocol("fleet_hello lacks `echo`".into()))?;
        if *echo != self.echo {
            return Err(CollectError::EchoMismatch { worker });
        }
        let planes_field = get(&hello, "planes")
            .ok_or_else(|| CollectError::Protocol("fleet_hello lacks `planes`".into()))?;
        let planes: Vec<u64> = Vec::from_value(planes_field)
            .map_err(|e| CollectError::Protocol(format!("fleet_hello `planes`: {e}")))?;
        let owned: BTreeSet<usize> = planes.iter().map(|&p| p as usize).collect();
        if owned.is_empty() || owned.len() != planes.len() {
            return Err(CollectError::Protocol(format!(
                "worker {worker} declares an empty or duplicated plane set"
            )));
        }
        if let Some(&worst) = owned.iter().find(|&&p| p >= self.switches) {
            return Err(CollectError::Protocol(format!(
                "worker {worker} declares plane {worst}, router has {}",
                self.switches
            )));
        }
        // --- telemetry + plane_done until fleet_end ---------------------
        let mut staged: BTreeMap<usize, Vec<SinkRecord>> = BTreeMap::new();
        let mut done: BTreeMap<usize, PlaneDoneMsg> = BTreeMap::new();
        loop {
            let mut t0 = prof_now(&self.prof);
            // Once the hello has identified the worker, both ways its
            // stream can die — EOF at a frame boundary or EOF mid-frame
            // — are the same typed condition, carrying the id.
            let frame = match reader.read_frame() {
                Ok(Some(frame)) => frame,
                Ok(None) | Err(FrameError::Truncated { .. }) => {
                    return Err(CollectError::WorkerTruncated {
                        worker: Some(worker),
                    })
                }
                Err(e) => return Err(e.into()),
            };
            let line = String::from_utf8(frame)
                .map_err(|_| CollectError::Protocol("frame is not UTF-8".into()))?;
            let parsed = parse_sink_line(&line)?;
            prof_lap(&mut self.prof, Phase::FrameDecode, &mut t0);
            match parsed {
                ParsedLine::Telemetry(rec) => {
                    let source = match &rec {
                        SinkRecord::Epoch { source, .. }
                        | SinkRecord::Span { source, .. }
                        | SinkRecord::Watchdog { source, .. }
                        | SinkRecord::RunEnd { source, .. } => source.clone(),
                    };
                    let plane = parse_plane_source(&source).ok_or_else(|| {
                        CollectError::Protocol(format!(
                            "worker {worker} pushed a record for non-plane source {source:?}"
                        ))
                    })?;
                    if !owned.contains(&plane) {
                        return Err(CollectError::Protocol(format!(
                            "worker {worker} pushed plane {plane}, outside its declared set"
                        )));
                    }
                    staged.entry(plane).or_default().push(rec);
                    prof_add(&mut self.prof, Phase::Staging, t0);
                }
                ParsedLine::Control { kind, value } if kind == "plane_done" => {
                    let msg = PlaneDoneMsg::from_value(&value).map_err(|e| {
                        CollectError::Protocol(format!("plane_done does not decode: {e}"))
                    })?;
                    let plane = msg.plane as usize;
                    if !owned.contains(&plane) {
                        return Err(CollectError::Protocol(format!(
                            "worker {worker} finished plane {plane}, outside its declared set"
                        )));
                    }
                    done.insert(plane, msg);
                }
                ParsedLine::Control { kind, .. } if kind == "fleet_end" => break,
                ParsedLine::Control { kind, value } if kind == "profile" => {
                    // Wall-clock sidecar from the worker: route into
                    // the profile hub (when profiling) under a
                    // per-worker source prefix. Never staged, never
                    // merged; an undecodable payload is dropped rather
                    // than failing the deterministic collection.
                    if let Some(p) = self.prof.as_ref() {
                        let data = get(&value, "data");
                        if let Some(mut rec) = data.and_then(|d| ProfileRecord::from_value(d).ok())
                        {
                            rec.source = format!("w{worker:02}/{}", rec.source);
                            p.hub().record(rec);
                        }
                    }
                }
                ParsedLine::Control { kind, .. } => {
                    return Err(CollectError::Protocol(format!(
                        "unknown control record {kind:?} from worker {worker}"
                    )))
                }
            }
        }
        // --- commit -----------------------------------------------------
        let tc = prof_now(&self.prof);
        for &plane in &owned {
            if !done.contains_key(&plane) {
                return Err(CollectError::Protocol(format!(
                    "worker {worker} sent fleet_end without plane_done for plane {plane}"
                )));
            }
            if let Some(prev) = self.committed.get(&plane) {
                if prev.worker != worker {
                    return Err(CollectError::PlaneConflict { plane, worker });
                }
                // Same worker re-pushing (reconnect after a partial
                // stream that never committed, or an idempotent retry):
                // the new stream replaces the old contribution.
                self.merge.clear_plane(plane);
            }
        }
        for (plane, msg) in done {
            for rec in staged.remove(&plane).unwrap_or_default() {
                self.merge.push(plane, rec);
            }
            self.committed.insert(
                plane,
                PlaneContribution {
                    worker,
                    fe_packets: msg.fe_packets,
                    fe_bytes: msg.fe_bytes,
                    report: msg.report,
                },
            );
        }
        self.workers.insert(worker);
        prof_add(&mut self.prof, Phase::Staging, tc);
        // One profile record per committed stream keeps the hub's
        // per-epoch view aligned with worker arrivals.
        if let Some(p) = self.prof.as_mut() {
            p.flush_nonempty();
        }
        Ok(worker)
    }

    /// Replay the merged stream (planes ascending, records in emission
    /// order) into `sink` and close it with the stitched `sps`
    /// `run_end` — the byte-identical reconstruction of the
    /// single-process `run_streamed` output. Fails with
    /// [`CollectError::Coverage`] when planes are missing.
    pub fn finish(
        self,
        router: &SpsRouter,
        horizon: SimTime,
        sink: &mut dyn TelemetrySink,
    ) -> Result<FleetOutcome, CollectError> {
        let missing = self.missing_planes();
        if !missing.is_empty() {
            return Err(CollectError::Coverage { missing });
        }
        let mut prof = self.prof;
        let records = self.merge.staged_records() as u64;
        let dropped_records = self.merge.dropped_records();
        let t0 = prof_now(&prof);
        self.merge.replay_into(sink);
        let results = self
            .committed
            .into_values()
            .map(|c| (c.report, c.fe_packets, c.fe_bytes))
            .collect();
        let report = router.stitch_report(results, horizon);
        sink.on_run_end("sps", router.drain_deadline(horizon), &report.metrics);
        prof_add(&mut prof, Phase::MergeReplay, t0);
        if let Some(p) = prof.as_mut() {
            p.flush_nonempty();
        }
        Ok(FleetOutcome {
            report,
            records,
            dropped_records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_core::RouterConfig;
    use rip_photonics::SplitPattern;
    use rip_telemetry::{MemorySink, Watchdog, WatchdogConfig};
    use rip_units::TimeDelta;

    fn job_parts() -> (
        SpsRouter,
        SpsWorkload,
        FaultPlan,
        SimTime,
        LiveOptions,
        Value,
    ) {
        let cfg = RouterConfig::small();
        let router = SpsRouter::new(cfg.clone(), SplitPattern::Striped).expect("valid config");
        let w = SpsWorkload::uniform(cfg.ribbons, 0.7, 7);
        let horizon = SimTime::from_ns(30_000);
        let live = LiveOptions {
            period: TimeDelta::from_ps(2_000_000),
            sample_one_in: 256,
        };
        let echo = serde_json::parse("{\"spec\":\"test\"}").expect("echo parses");
        (router, w, FaultPlan::default(), horizon, live, echo)
    }

    fn oracle_stream(
        router: &SpsRouter,
        w: &SpsWorkload,
        plan: &FaultPlan,
        horizon: SimTime,
        live: LiveOptions,
    ) -> (Vec<u8>, SpsReport) {
        let mut bytes = Vec::new();
        let report = {
            let sink = JsonlSink::new(&mut bytes);
            let (mut wd, _handle) = Watchdog::new(WatchdogConfig::default(), sink);
            router.run_streamed(w, horizon, plan, live, &mut wd)
        };
        (bytes, report)
    }

    fn collect_stream(
        router: &SpsRouter,
        horizon: SimTime,
        collector: Collector,
    ) -> (Vec<u8>, SpsReport) {
        let mut bytes = Vec::new();
        let report = {
            let sink = JsonlSink::new(&mut bytes);
            let (mut wd, _handle) = Watchdog::new(WatchdogConfig::default(), sink);
            collector
                .finish(router, horizon, &mut wd)
                .expect("full coverage")
                .report
        };
        (bytes, report)
    }

    #[test]
    fn two_partitionings_are_byte_identical_to_the_oracle() {
        let (router, w, plan, horizon, live, echo) = job_parts();
        let job = FleetJob {
            router: &router,
            workload: &w,
            plan: &plan,
            horizon,
            live,
            echo: echo.clone(),
        };
        let (oracle, oracle_report) = oracle_stream(&router, &w, &plan, horizon, live);
        let planes = RouterConfig::small().switches;
        let partitionings: Vec<Vec<Vec<usize>>> = vec![
            // one worker per plane
            (0..planes).map(|p| vec![p]).collect(),
            // split in two: even-ish halves, deliberately interleaved
            vec![
                (0..planes).step_by(2).collect(),
                (1..planes).step_by(2).collect(),
            ],
        ];
        for partition in partitionings {
            let mut collector = Collector::new(echo.clone(), planes);
            // Ingest in reverse worker order to prove arrival order is
            // irrelevant.
            let mut streams: Vec<Vec<u8>> = Vec::new();
            for (worker, subset) in partition.iter().enumerate() {
                let out = push_worker_stream(&job, worker as u64, subset, Vec::new())
                    .expect("worker pushes");
                streams.push(out);
            }
            for stream in streams.iter().rev() {
                collector.ingest(&stream[..]).expect("stream ingests");
            }
            let (merged, report) = collect_stream(&router, horizon, collector);
            assert_eq!(
                String::from_utf8(merged).expect("utf8"),
                String::from_utf8(oracle.clone()).expect("utf8"),
                "merged stream diverges for partition {partition:?}"
            );
            assert_eq!(
                serde_json::to_string(&report).expect("report serializes"),
                serde_json::to_string(&oracle_report).expect("report serializes"),
            );
        }
    }

    #[test]
    fn truncated_stream_is_typed_and_uncommitted() {
        let (router, w, plan, horizon, live, echo) = job_parts();
        let job = FleetJob {
            router: &router,
            workload: &w,
            plan: &plan,
            horizon,
            live,
            echo: echo.clone(),
        };
        let all: Vec<usize> = (0..RouterConfig::small().switches).collect();
        let full = push_worker_stream(&job, 0, &all, Vec::new()).expect("worker pushes");
        let mut collector = Collector::new(echo.clone(), all.len());
        // Cut the stream before its fleet_end frame.
        match collector.ingest(&full[..full.len() - 8]) {
            Err(CollectError::WorkerTruncated { .. }) | Err(CollectError::Frame(_)) => {}
            other => panic!("want truncation, got {other:?}"),
        }
        assert_eq!(collector.workers_done(), 0);
        assert_eq!(collector.staged_records(), 0);
        // The reconnect re-push commits cleanly.
        collector.ingest(&full[..]).expect("retry ingests");
        assert_eq!(collector.missing_planes(), Vec::<usize>::new());
    }

    #[test]
    fn echo_mismatch_and_plane_conflict_are_typed() {
        let (router, w, plan, horizon, live, echo) = job_parts();
        let job = FleetJob {
            router: &router,
            workload: &w,
            plan: &plan,
            horizon,
            live,
            echo: echo.clone(),
        };
        let stream = push_worker_stream(&job, 0, &[0], Vec::new()).expect("worker pushes");
        let planes = RouterConfig::small().switches;
        let mut wrong = Collector::new(Value::Null, planes);
        assert!(matches!(
            wrong.ingest(&stream[..]),
            Err(CollectError::EchoMismatch { worker: 0 })
        ));
        let mut collector = Collector::new(echo.clone(), planes);
        collector.ingest(&stream[..]).expect("first claim");
        let rival = push_worker_stream(&job, 1, &[0], Vec::new()).expect("worker pushes");
        assert!(matches!(
            collector.ingest(&rival[..]),
            Err(CollectError::PlaneConflict {
                plane: 0,
                worker: 1
            })
        ));
        // An idempotent re-push by the owner is fine.
        collector.ingest(&stream[..]).expect("owner re-push");
    }

    #[test]
    fn missing_planes_fail_coverage() {
        let (router, w, plan, horizon, live, echo) = job_parts();
        let job = FleetJob {
            router: &router,
            workload: &w,
            plan: &plan,
            horizon,
            live,
            echo: echo.clone(),
        };
        let planes = RouterConfig::small().switches;
        let mut collector = Collector::new(echo, planes);
        let stream = push_worker_stream(&job, 0, &[0], Vec::new()).expect("worker pushes");
        collector.ingest(&stream[..]).expect("ingests");
        let missing = collector.missing_planes();
        assert_eq!(missing, (1..planes).collect::<Vec<_>>());
        let mut sink = MemorySink::new();
        match collector.finish(&router, horizon, &mut sink) {
            Err(CollectError::Coverage { missing: m }) => assert_eq!(m, missing),
            other => panic!(
                "want coverage error, got {:?}",
                other.map(|o| o.report.offered)
            ),
        }
    }
}
