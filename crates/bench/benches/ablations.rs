//! Ablation benches for the design choices DESIGN.md calls out:
//! hidden refresh on/off, strict vs pipelined random access, exact-size
//! vs burst-padded transfers, and the spraying baseline's resequencer.

use criterion::{criterion_group, criterion_main, Criterion};
use rip_baselines::SprayingHbmSwitch;
use rip_hbm::{
    AccessPattern, Direction, HbmGeometry, HbmGroup, HbmTiming, PfiConfig, PfiController,
    RandomAccessController,
};
use rip_traffic::Packet;
use rip_units::{DataRate, DataSize, SimTime, TimeDelta};
use std::hint::black_box;
use std::time::Duration;

fn one_stack() -> HbmGroup {
    HbmGroup::new(1, HbmGeometry::hbm4(), HbmTiming::hbm4())
}

fn bench_refresh_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("pfi_refresh");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, enabled) in [("on", true), ("off", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut group = one_stack();
                let mut pfi = PfiController::new(PfiConfig::reference(), &group).unwrap();
                pfi.set_refresh_enabled(enabled);
                black_box(pfi.run_sustained(&mut group, 200))
            })
        });
    }
    g.finish();
}

fn bench_random_access_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("random_access_modes_64B");
    g.sample_size(20).measurement_time(Duration::from_secs(3));
    for (name, strict, pad) in [
        ("strict_exact", true, false),
        ("pipelined_exact", false, false),
        ("strict_burst_padded", true, true),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut group = one_stack();
                let mut ctl = RandomAccessController::new(AccessPattern::ParallelChannels, 7);
                ctl.set_strict(strict);
                ctl.set_pad_to_burst(pad);
                black_box(ctl.run(&mut group, 1000, DataSize::from_bytes(64), Direction::Write))
            })
        });
    }
    g.finish();
}

fn bench_spraying(c: &mut Criterion) {
    let trace: Vec<Packet> = (0..4000u64)
        .map(|i| {
            Packet::new(
                i,
                (i % 16) as usize,
                (i % 16) as usize,
                DataSize::from_bytes(512),
                SimTime::from_ps(i * 100),
            )
        })
        .collect();
    c.bench_function("spraying_resequencer_4k_packets", |b| {
        b.iter(|| {
            let sw =
                SprayingHbmSwitch::new(32, DataRate::from_gbps(640), TimeDelta::from_ns(30), 9);
            black_box(sw.run(&trace, 16))
        })
    });
}

criterion_group!(
    benches,
    bench_refresh_ablation,
    bench_random_access_modes,
    bench_spraying
);
criterion_main!(benches);
