//! Micro-benches of the hot components: event queue, cyclical crossbar,
//! ECMP hashes, batch assembly and the traffic generator.

use criterion::{criterion_group, criterion_main, Criterion};
use rip_core::{BatchAssembler, CyclicalCrossbar};
use rip_sim::EventQueue;
use rip_traffic::hash::{crc32c, fnv1a, lane_for, HashKind};
use rip_traffic::{ArrivalProcess, FlowKey, Packet, PacketGenerator, SizeDistribution};
use rip_units::{DataRate, DataSize, SimTime};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..10_000u64 {
                // Pseudo-shuffled times exercise heap reordering.
                q.schedule(SimTime::from_ns((i * 2_654_435_761) % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
}

fn bench_crossbar(c: &mut Criterion) {
    let xb = CyclicalCrossbar::new(16);
    c.bench_function("crossbar_mapping_64k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for slot in 0..4096u64 {
                for input in 0..16 {
                    acc = acc.wrapping_add(xb.module_for(input, slot));
                }
            }
            black_box(acc)
        })
    });
}

fn bench_hashes(c: &mut Criterion) {
    let flow = FlowKey {
        src_ip: 0x0A000001,
        dst_ip: 0x0B000002,
        src_port: 12345,
        dst_port: 443,
        proto: 6,
    };
    let bytes = flow.to_bytes();
    let mut g = c.benchmark_group("flow_hash");
    g.bench_function("crc32c_13B", |b| b.iter(|| black_box(crc32c(&bytes))));
    g.bench_function("fnv1a_13B", |b| b.iter(|| black_box(fnv1a(&bytes))));
    g.bench_function("lane_for_64lanes", |b| {
        b.iter(|| black_box(lane_for(flow, 64, HashKind::Crc32c)))
    });
    g.finish();
}

fn bench_batch_assembly(c: &mut Criterion) {
    c.bench_function("batch_assembler_1k_packets", |b| {
        b.iter(|| {
            let mut a = BatchAssembler::new(0, 16, DataSize::from_kib(4));
            let mut batches = 0usize;
            for i in 0..1000u64 {
                let p = Packet::new(
                    i,
                    0,
                    (i % 16) as usize,
                    DataSize::from_bytes(64 + (i * 97) % 1400),
                    SimTime::ZERO,
                );
                batches += a.push(&p).len();
            }
            black_box(batches)
        })
    });
}

fn bench_traffic_gen(c: &mut Criterion) {
    c.bench_function("packet_generator_10k", |b| {
        b.iter(|| {
            let mut g = PacketGenerator::new(
                0,
                DataRate::from_gbps(640),
                0.9,
                vec![1.0; 16],
                SizeDistribution::Imix,
                ArrivalProcess::Poisson,
                256,
                42,
            )
            .unwrap();
            let mut bytes = 0u64;
            for _ in 0..10_000 {
                bytes += g.next_packet().unwrap().size.bytes();
            }
            black_box(bytes)
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_crossbar,
    bench_hashes,
    bench_batch_assembly,
    bench_traffic_gen
);
criterion_main!(benches);
