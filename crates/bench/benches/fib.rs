//! Forwarding-substrate benches: LPM lookups per second on the trie vs
//! the compiled stride table, and table construction cost.

use criterion::{criterion_group, criterion_main, Criterion};
use rip_fib::{StrideTable, SyntheticRib};
use std::hint::black_box;
use std::time::Duration;

fn bench_lookups(c: &mut Criterion) {
    let rib = SyntheticRib::generate(50_000, 16, 42);
    let trie = rib.trie();
    let table = rib.stride_table(16);
    // A fixed probe set so trie and table race on identical work.
    let probes: Vec<u32> = (0..4096u32)
        .map(|i| i.wrapping_mul(2_654_435_761))
        .collect();
    let mut g = c.benchmark_group("lpm_4096_lookups_50k_routes");
    g.bench_function("binary_trie", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &ip in &probes {
                if let Some((_, h)) = trie.lookup(ip) {
                    acc = acc.wrapping_add(h as u64);
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("stride_table_16", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &ip in &probes {
                if let Some(h) = table.lookup(ip) {
                    acc = acc.wrapping_add(h as u64);
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_construction(c: &mut Criterion) {
    let rib = SyntheticRib::generate(20_000, 16, 7);
    let mut g = c.benchmark_group("fib_construction_20k_routes");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    g.bench_function("build_trie", |b| b.iter(|| black_box(rib.trie())));
    let trie = rib.trie();
    g.bench_function("compile_stride_16", |b| {
        b.iter(|| black_box(StrideTable::compile(&trie, 16).unwrap()))
    });
    g.finish();
}

fn bench_rib_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("rib_generation");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    g.bench_function("synthetic_rib_10k_routes", |b| {
        b.iter(|| black_box(SyntheticRib::generate(10_000, 16, 1)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_lookups,
    bench_construction,
    bench_rib_generation
);
criterion_main!(benches);
