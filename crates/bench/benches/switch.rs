//! E3/E4/E14 engine benches: the full HBM-switch discrete-event
//! pipeline, and the SPS fluid model.

use criterion::{criterion_group, criterion_main, Criterion};
use rip_bench::uniform_trace;
use rip_core::{HbmSwitch, RouterConfig, SpsRouter, SpsWorkload};
use rip_photonics::SplitPattern;
use rip_traffic::FiberFill;
use rip_units::SimTime;
use std::hint::black_box;
use std::time::Duration;

fn bench_switch_des(c: &mut Criterion) {
    let cfg = RouterConfig::small();
    let horizon = SimTime::from_ns(30_000);
    let drain = SimTime::from_ns(120_000);
    let mut g = c.benchmark_group("hbm_switch_des_30us");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for load in [0.3, 0.9] {
        let trace = uniform_trace(&cfg, load, horizon, 0xBE);
        g.bench_function(format!("load_{load}"), |b| {
            b.iter(|| {
                let sw = HbmSwitch::new(cfg.clone()).unwrap();
                black_box(sw.run(&trace, drain))
            })
        });
    }
    g.finish();
}

fn bench_oq_shadow(c: &mut Criterion) {
    let cfg = RouterConfig::small();
    let trace = uniform_trace(&cfg, 0.9, SimTime::from_ns(30_000), 0xBE);
    c.bench_function("ideal_oq_shadow_30us", |b| {
        b.iter(|| {
            let mut sw = rip_baselines::IdealOqSwitch::new(cfg.ribbons, cfg.port_rate());
            black_box(sw.run(&trace))
        })
    });
}

fn bench_sps_fluid(c: &mut Criterion) {
    let cfg = RouterConfig::small();
    let router = SpsRouter::new(cfg.clone(), SplitPattern::PseudoRandom { seed: 1 }).unwrap();
    let mut w = SpsWorkload::uniform(cfg.ribbons, 0.25, 2);
    w.fill = FiberFill::Linear;
    c.bench_function("sps_fluid_loads", |b| {
        b.iter(|| black_box(router.fluid_loads(&w)))
    });
}

criterion_group!(benches, bench_switch_des, bench_oq_shadow, bench_sps_fluid);
criterion_main!(benches);
