//! E1/E2 engine benches: the PFI controller and the random-access
//! baseline driving the HBM4 device model.
//!
//! Criterion times the *simulator*; the scientific bandwidth numbers
//! are printed by the `repro` binary. These benches keep the device
//! model's hot paths (command legality checks, bank FSM updates) honest.

use criterion::{criterion_group, criterion_main, Criterion};
use rip_hbm::{
    AccessPattern, Direction, HbmGeometry, HbmGroup, HbmTiming, PfiConfig, PfiController,
    RandomAccessController,
};
use rip_units::DataSize;
use std::hint::black_box;
use std::time::Duration;

fn one_stack() -> HbmGroup {
    HbmGroup::new(1, HbmGeometry::hbm4(), HbmTiming::hbm4())
}

fn bench_pfi_sustained(c: &mut Criterion) {
    c.bench_function("pfi_sustained_100_frames_32ch", |b| {
        b.iter(|| {
            let mut group = one_stack();
            let mut pfi = PfiController::new(PfiConfig::reference(), &group).unwrap();
            black_box(pfi.run_sustained(&mut group, 100))
        })
    });
}

fn bench_pfi_full_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("pfi_full_width");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    g.bench_function("pfi_sustained_20_frames_128ch", |b| {
        b.iter(|| {
            let mut group = HbmGroup::reference();
            let mut pfi = PfiController::new(PfiConfig::reference(), &group).unwrap();
            black_box(pfi.run_sustained(&mut group, 20))
        })
    });
    g.finish();
}

fn bench_random_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("random_access_1000");
    g.sample_size(20).measurement_time(Duration::from_secs(3));
    for (name, size) in [("64B", 64u64), ("1500B", 1500)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut group = one_stack();
                let mut ctl = RandomAccessController::new(AccessPattern::ParallelChannels, 7);
                black_box(ctl.run(
                    &mut group,
                    1000,
                    DataSize::from_bytes(size),
                    Direction::Write,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_pfi_sustained,
    bench_pfi_full_width,
    bench_random_access
);
criterion_main!(benches);
