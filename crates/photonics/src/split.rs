//! Spatial fiber splitting: the SPS front-end mapping (§2.1 Design 4).

use rip_sim::rng::permutation;
use serde::{Deserialize, Serialize};

/// How the `F` fibers of each ribbon are distributed over the `H`
/// parallel HBM switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitPattern {
    /// The "poor man's" split the paper starts from: fibers
    /// `0..α` of every ribbon go to switch 0, `α..2α` to switch 1, etc.
    /// Because operators connect (and load) the first fibers of a ribbon
    /// first, this concentrates load on the first switches (§2.1
    /// Challenge 4), and the pattern is trivially known to an attacker.
    Sequential,
    /// Round-robin: fiber `f` goes to switch `f mod H`. Better than
    /// sequential under fill-order skew, but still a publicly guessable
    /// pattern.
    Striped,
    /// The paper's remedy (§2.1 Idea 4): a pseudo-random choice of the
    /// `α` fibers connecting each ribbon to each switch, drawn from the
    /// given seed. Each ribbon gets an independent permutation.
    PseudoRandom {
        /// Seed of the per-ribbon permutations (a manufacturing-time
        /// secret; unknown to the attacker of experiment E17).
        seed: u64,
    },
}

/// The complete `(ribbon, fiber) → (switch, local waveguide)` assignment
/// for one package.
///
/// ```
/// use rip_photonics::{SplitMap, SplitPattern};
/// // The paper's geometry: 16 ribbons x 64 fibers over 16 switches.
/// let map = SplitMap::new(16, 64, 16, SplitPattern::PseudoRandom { seed: 7 }).unwrap();
/// assert_eq!(map.alpha(), 4); // every (ribbon, switch) pair gets 4 fibers
/// assert_eq!(map.fibers_for(0, 3).len(), 4);
/// ```
///
/// Invariant (checked at construction): every `(ribbon, switch)` pair is
/// connected by exactly `α = F/H` fibers, so each HBM switch port
/// receives exactly `1/H` of each ribbon's fibers — the *spatial* load
/// balance the architecture relies on. What the pattern controls is
/// *which* fibers those are, which matters once per-fiber loads are
/// skewed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitMap {
    ribbons: usize,
    fibers_per_ribbon: usize,
    switches: usize,
    pattern: SplitPattern,
    /// `assign[ribbon][fiber] = switch`.
    assign: Vec<Vec<usize>>,
}

impl SplitMap {
    /// Build the assignment. `fibers_per_ribbon` must be divisible by
    /// `switches`.
    pub fn new(
        ribbons: usize,
        fibers_per_ribbon: usize,
        switches: usize,
        pattern: SplitPattern,
    ) -> Result<Self, String> {
        if ribbons == 0 || fibers_per_ribbon == 0 || switches == 0 {
            return Err("ribbon, fiber and switch counts must be positive".into());
        }
        if !fibers_per_ribbon.is_multiple_of(switches) {
            return Err(format!(
                "fibers per ribbon ({fibers_per_ribbon}) not divisible by switches ({switches})"
            ));
        }
        let alpha = fibers_per_ribbon / switches;
        let assign = (0..ribbons)
            .map(|r| match pattern {
                SplitPattern::Sequential => (0..fibers_per_ribbon).map(|f| f / alpha).collect(),
                SplitPattern::Striped => (0..fibers_per_ribbon).map(|f| f % switches).collect(),
                SplitPattern::PseudoRandom { seed } => {
                    // Independent permutation per ribbon; fiber at
                    // permuted position p goes to switch p / alpha.
                    let perm = permutation(fibers_per_ribbon, seed, r as u64);
                    let mut v = vec![0usize; fibers_per_ribbon];
                    for (pos, &fiber) in perm.iter().enumerate() {
                        v[fiber] = pos / alpha;
                    }
                    v
                }
            })
            .collect();
        let map = SplitMap {
            ribbons,
            fibers_per_ribbon,
            switches,
            pattern,
            assign,
        };
        map.check_invariant()?;
        Ok(map)
    }

    fn check_invariant(&self) -> Result<(), String> {
        let alpha = self.alpha();
        for r in 0..self.ribbons {
            let mut counts = vec![0usize; self.switches];
            for f in 0..self.fibers_per_ribbon {
                counts[self.assign[r][f]] += 1;
            }
            if counts.iter().any(|&c| c != alpha) {
                return Err(format!(
                    "ribbon {r}: fibers per switch {counts:?} != alpha {alpha}"
                ));
            }
        }
        Ok(())
    }

    /// `α = F/H`: fibers connecting each ribbon to each switch.
    pub fn alpha(&self) -> usize {
        self.fibers_per_ribbon / self.switches
    }

    /// Number of ribbons `N`.
    pub fn ribbons(&self) -> usize {
        self.ribbons
    }

    /// Fibers per ribbon `F`.
    pub fn fibers_per_ribbon(&self) -> usize {
        self.fibers_per_ribbon
    }

    /// Number of switches `H`.
    pub fn switches(&self) -> usize {
        self.switches
    }

    /// The pattern this map was built from.
    pub fn pattern(&self) -> SplitPattern {
        self.pattern
    }

    /// Which switch fiber `fiber` of ribbon `ribbon` is spliced to.
    pub fn switch_for(&self, ribbon: usize, fiber: usize) -> usize {
        self.assign[ribbon][fiber]
    }

    /// The fibers of `ribbon` that feed `switch` (ascending order).
    pub fn fibers_for(&self, ribbon: usize, switch: usize) -> Vec<usize> {
        (0..self.fibers_per_ribbon)
            .filter(|&f| self.assign[ribbon][f] == switch)
            .collect()
    }

    /// Rebuild the split with the dead switches of `alive` excluded:
    /// every fiber pointing at a dead switch is re-spliced, one at a
    /// time, to whichever surviving switch currently has the fewest of
    /// that ribbon's fibers (ties to the lowest index). Per ribbon the
    /// surviving switches end up within one fiber of each other — the
    /// best spatial balance a degraded package can offer — but each now
    /// carries `H/H_alive` of the load, so the caller must expect
    /// per-switch overload at high offered rates.
    pub fn degraded(&self, alive: &[bool]) -> Result<SplitMap, String> {
        if alive.len() != self.switches {
            return Err(format!(
                "alive mask has {} entries for {} switches",
                alive.len(),
                self.switches
            ));
        }
        if alive.iter().all(|&a| a) {
            return Ok(self.clone());
        }
        if !alive.iter().any(|&a| a) {
            return Err("every switch plane is down".into());
        }
        let mut assign = self.assign.clone();
        for row in assign.iter_mut() {
            let mut counts = vec![0usize; self.switches];
            for &s in row.iter() {
                if alive[s] {
                    counts[s] += 1;
                }
            }
            for slot in row.iter_mut() {
                if !alive[*slot] {
                    let target = (0..self.switches)
                        .filter(|&s| alive[s])
                        .min_by_key(|&s| counts[s])
                        .expect("at least one switch alive");
                    *slot = target;
                    counts[target] += 1;
                }
            }
        }
        // The exact-α invariant intentionally does not hold here; the
        // re-spliced map trades it for keeping every fiber lit.
        Ok(SplitMap {
            ribbons: self.ribbons,
            fibers_per_ribbon: self.fibers_per_ribbon,
            switches: self.switches,
            pattern: self.pattern,
            assign,
        })
    }

    /// Given per-fiber loads (normalized, indexed `[ribbon][fiber]`),
    /// return the total load arriving at each switch.
    pub fn switch_loads(&self, fiber_loads: &[Vec<f64>]) -> Vec<f64> {
        assert_eq!(fiber_loads.len(), self.ribbons, "ribbon count mismatch");
        let mut loads = vec![0.0; self.switches];
        for (r, row) in fiber_loads.iter().enumerate() {
            assert_eq!(
                row.len(),
                self.fibers_per_ribbon,
                "fiber count mismatch on ribbon {r}"
            );
            for (f, &l) in row.iter().enumerate() {
                loads[self.assign[r][f]] += l;
            }
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_groups_consecutive_fibers() {
        let m = SplitMap::new(2, 8, 4, SplitPattern::Sequential).unwrap();
        assert_eq!(m.alpha(), 2);
        assert_eq!(m.switch_for(0, 0), 0);
        assert_eq!(m.switch_for(0, 1), 0);
        assert_eq!(m.switch_for(0, 2), 1);
        assert_eq!(m.switch_for(0, 7), 3);
        assert_eq!(m.fibers_for(1, 0), vec![0, 1]);
    }

    #[test]
    fn striped_round_robins() {
        let m = SplitMap::new(1, 8, 4, SplitPattern::Striped).unwrap();
        assert_eq!(m.switch_for(0, 0), 0);
        assert_eq!(m.switch_for(0, 1), 1);
        assert_eq!(m.switch_for(0, 5), 1);
        assert_eq!(m.fibers_for(0, 2), vec![2, 6]);
    }

    #[test]
    fn pseudo_random_is_balanced_and_deterministic() {
        let m1 = SplitMap::new(16, 64, 16, SplitPattern::PseudoRandom { seed: 42 }).unwrap();
        let m2 = SplitMap::new(16, 64, 16, SplitPattern::PseudoRandom { seed: 42 }).unwrap();
        for r in 0..16 {
            for s in 0..16 {
                let fibers = m1.fibers_for(r, s);
                assert_eq!(fibers.len(), 4, "alpha must be exactly 4");
                assert_eq!(fibers, m2.fibers_for(r, s), "determinism");
            }
        }
        let m3 = SplitMap::new(16, 64, 16, SplitPattern::PseudoRandom { seed: 43 }).unwrap();
        let same = (0..16).all(|r| (0..64).all(|f| m1.switch_for(r, f) == m3.switch_for(r, f)));
        assert!(!same, "different seeds must give different maps");
    }

    #[test]
    fn ribbons_get_independent_permutations() {
        let m = SplitMap::new(4, 64, 16, SplitPattern::PseudoRandom { seed: 7 }).unwrap();
        let r0: Vec<_> = (0..64).map(|f| m.switch_for(0, f)).collect();
        let r1: Vec<_> = (0..64).map(|f| m.switch_for(1, f)).collect();
        assert_ne!(r0, r1, "per-ribbon permutations must differ");
    }

    #[test]
    fn rejects_indivisible_fiber_counts() {
        assert!(SplitMap::new(2, 10, 4, SplitPattern::Sequential).is_err());
        assert!(SplitMap::new(0, 8, 4, SplitPattern::Sequential).is_err());
    }

    #[test]
    fn switch_loads_sum_preserved() {
        let m = SplitMap::new(2, 8, 4, SplitPattern::PseudoRandom { seed: 1 }).unwrap();
        // Skewed fiber loads: first fibers loaded, rest idle.
        let loads = vec![
            vec![1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        ];
        let per_switch = m.switch_loads(&loads);
        let total: f64 = per_switch.iter().sum();
        assert!((total - 6.0).abs() < 1e-12);
    }

    #[test]
    fn degraded_split_rebalances_over_survivors() {
        let m = SplitMap::new(4, 16, 4, SplitPattern::PseudoRandom { seed: 5 }).unwrap();
        let mut alive = vec![true; 4];
        alive[2] = false;
        let d = m.degraded(&alive).unwrap();
        for r in 0..4 {
            assert!(
                d.fibers_for(r, 2).is_empty(),
                "dead switch must get no fibers"
            );
            // 16 fibers over 3 survivors: 6/5/5 per ribbon — within one.
            let counts: Vec<usize> = [0, 1, 3]
                .iter()
                .map(|&s| d.fibers_for(r, s).len())
                .collect();
            assert_eq!(counts.iter().sum::<usize>(), 16);
            assert!(
                counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1,
                "{counts:?}"
            );
            // Fibers that pointed at survivors are untouched.
            for f in 0..16 {
                if m.switch_for(r, f) != 2 {
                    assert_eq!(d.switch_for(r, f), m.switch_for(r, f));
                }
            }
        }
        // Determinism: same inputs, same re-splice.
        let d2 = m.degraded(&alive).unwrap();
        for r in 0..4 {
            for f in 0..16 {
                assert_eq!(d.switch_for(r, f), d2.switch_for(r, f));
            }
        }
    }

    #[test]
    fn degraded_split_rejects_bad_masks() {
        let m = SplitMap::new(1, 8, 4, SplitPattern::Sequential).unwrap();
        assert!(m.degraded(&[true; 3]).is_err(), "mask length mismatch");
        assert!(m.degraded(&[false; 4]).is_err(), "all planes down");
        // All-alive is the identity.
        let same = m.degraded(&[true; 4]).unwrap();
        for f in 0..8 {
            assert_eq!(same.switch_for(0, f), m.switch_for(0, f));
        }
    }

    #[test]
    fn sequential_concentrates_fill_order_skew() {
        // Paper §2.1 Challenge 4: with the first fibers loaded first,
        // sequential splitting overloads the first switch.
        let m_seq = SplitMap::new(1, 64, 16, SplitPattern::Sequential).unwrap();
        let m_rand = SplitMap::new(1, 64, 16, SplitPattern::PseudoRandom { seed: 9 }).unwrap();
        // Only the first 16 fibers carry traffic.
        let loads = vec![(0..64).map(|f| if f < 16 { 1.0 } else { 0.0 }).collect()];
        let seq = m_seq.switch_loads(&loads);
        let rand = m_rand.switch_loads(&loads);
        let seq_max = seq.iter().cloned().fold(0.0, f64::max);
        let rand_max = rand.iter().cloned().fold(0.0, f64::max);
        // Sequential: switches 0..4 get 4.0 each, the rest get zero.
        assert_eq!(seq_max, 4.0);
        // Pseudo-random spreads far better than the worst case.
        assert!(
            rand_max < seq_max,
            "pseudo-random max {rand_max} should beat sequential {seq_max}"
        );
    }
}
