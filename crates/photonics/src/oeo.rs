//! O/E–E/O conversion energy accounting and lane fault injection.

use rip_units::{DataRate, DataSize, Energy, Power};
use serde::{Deserialize, Serialize};

/// Health of one optical lane (fiber or waveguide), for fault-injection
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LaneFault {
    /// Lane operates at full rate.
    Healthy,
    /// Lane delivers only the given fraction of its nominal rate
    /// (e.g. a degraded laser or thermally detuned ring).
    Degraded(f64),
    /// Lane carries nothing.
    Dead,
}

impl LaneFault {
    /// The usable fraction of the nominal lane rate.
    pub fn capacity_factor(self) -> f64 {
        match self {
            LaneFault::Healthy => 1.0,
            LaneFault::Degraded(f) => f.clamp(0.0, 1.0),
            LaneFault::Dead => 0.0,
        }
    }

    /// Effective rate of a lane with nominal `rate`.
    pub fn effective_rate(self, rate: DataRate) -> DataRate {
        rate.scale(self.capacity_factor())
    }
}

/// One optical↔electrical conversion stage with pJ/bit energy metering.
///
/// §4 of the paper budgets ≈1.15 pJ/bit for commercially available
/// silicon photonics; the SPS architecture's entire point (§2.1 Idea 3)
/// is that a packet pays this exactly twice (one O/E on ingress, one E/O
/// on egress) instead of six times in a three-stage design.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OeoConverter {
    energy_per_bit: Energy,
    bits_converted: u64,
    conversions: u64,
}

impl OeoConverter {
    /// Commercial silicon photonics figure used by the paper (§4).
    pub const REFERENCE_PJ_PER_BIT: f64 = 1.15;

    /// A converter with the given energy figure.
    pub fn new(energy_per_bit: Energy) -> Self {
        OeoConverter {
            energy_per_bit,
            bits_converted: 0,
            conversions: 0,
        }
    }

    /// The paper's reference converter (1.15 pJ/bit).
    pub fn reference() -> Self {
        OeoConverter::new(Energy::from_pj_per_bit(Self::REFERENCE_PJ_PER_BIT))
    }

    /// Record the conversion of `size` through this stage.
    pub fn convert(&mut self, size: DataSize) {
        self.bits_converted += size.bits();
        self.conversions += 1;
    }

    /// Total data converted.
    pub fn total_converted(&self) -> DataSize {
        DataSize::from_bits(self.bits_converted)
    }

    /// Number of conversion events recorded.
    pub fn conversions(&self) -> u64 {
        self.conversions
    }

    /// Total energy dissipated so far, in joules.
    pub fn energy_joules(&self) -> f64 {
        self.energy_per_bit.pj_per_bit() * self.bits_converted as f64 * 1e-12
    }

    /// Sustained power when converting a stream at `rate`.
    pub fn power_at(&self, rate: DataRate) -> Power {
        self.energy_per_bit.power_at(rate)
    }

    /// The energy figure of this stage.
    pub fn energy_per_bit(&self) -> Energy {
        self.energy_per_bit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_power_matches_paper() {
        // 81.92 Tb/s of OEO at 1.15 pJ/bit ~= 94 W per HBM switch.
        let c = OeoConverter::reference();
        let p = c.power_at(DataRate::from_gbps(81_920));
        assert!((p.watts() - 94.2).abs() < 0.2, "{}", p.watts());
    }

    #[test]
    fn energy_accumulates() {
        let mut c = OeoConverter::reference();
        c.convert(DataSize::from_bytes(1500));
        c.convert(DataSize::from_bytes(64));
        assert_eq!(c.conversions(), 2);
        assert_eq!(c.total_converted(), DataSize::from_bytes(1564));
        let expect = 1.15 * 1564.0 * 8.0 * 1e-12;
        assert!((c.energy_joules() - expect).abs() < 1e-18);
    }

    #[test]
    fn fault_capacity_factors() {
        assert_eq!(LaneFault::Healthy.capacity_factor(), 1.0);
        assert_eq!(LaneFault::Dead.capacity_factor(), 0.0);
        assert_eq!(LaneFault::Degraded(0.5).capacity_factor(), 0.5);
        // Out-of-range degradation clamps.
        assert_eq!(LaneFault::Degraded(7.0).capacity_factor(), 1.0);
        assert_eq!(LaneFault::Degraded(-1.0).capacity_factor(), 0.0);
        let r = DataRate::from_gbps(40);
        assert_eq!(
            LaneFault::Degraded(0.25).effective_rate(r),
            DataRate::from_gbps(10)
        );
        assert_eq!(LaneFault::Dead.effective_rate(r), DataRate::ZERO);
    }
}
