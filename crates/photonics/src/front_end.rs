//! The package-level optical front end (§2.2 "Modules"/"Operation").

use rip_units::DataRate;
use serde::{Deserialize, Serialize};

use crate::oeo::LaneFault;
use crate::split::{SplitMap, SplitPattern};

/// The optical front end of one router package: `N` fiber ribbons of `F`
/// fibers, each fiber carrying `W` WDM wavelengths of `R` each, passively
/// coupled into waveguides and spatially split over `H` HBM switches.
///
/// The same `N` ribbons also serve as the egress (each fiber carries a
/// separate set of `W` output wavelengths), so total package I/O is
/// `2·N·F·W·R`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrontEnd {
    /// N — fiber ribbons (and ports per HBM switch).
    pub ribbons: usize,
    /// F — fibers per ribbon.
    pub fibers_per_ribbon: usize,
    /// W — WDM wavelengths per fiber, per direction.
    pub wavelengths_per_fiber: usize,
    /// R — rate per wavelength.
    pub rate_per_wavelength: DataRate,
    split: SplitMap,
    /// Per-(ribbon, fiber) health, for fault injection.
    faults: Vec<Vec<LaneFault>>,
}

impl FrontEnd {
    /// Build a front end splitting over `switches` with `pattern`.
    pub fn new(
        ribbons: usize,
        fibers_per_ribbon: usize,
        wavelengths_per_fiber: usize,
        rate_per_wavelength: DataRate,
        switches: usize,
        pattern: SplitPattern,
    ) -> Result<Self, String> {
        if wavelengths_per_fiber == 0 || rate_per_wavelength.is_zero() {
            return Err("wavelength count and rate must be positive".into());
        }
        let split = SplitMap::new(ribbons, fibers_per_ribbon, switches, pattern)?;
        Ok(FrontEnd {
            ribbons,
            fibers_per_ribbon,
            wavelengths_per_fiber,
            rate_per_wavelength,
            faults: vec![vec![LaneFault::Healthy; fibers_per_ribbon]; ribbons],
            split,
        })
    }

    /// The paper's reference front end: N=16 ribbons, F=64 fibers, W=16
    /// wavelengths at R=40 Gb/s, split over H=16 switches.
    pub fn reference(pattern: SplitPattern) -> Self {
        FrontEnd::new(16, 64, 16, DataRate::from_gbps(40), 16, pattern)
            .expect("reference front end is valid")
    }

    /// The fiber split map.
    pub fn split(&self) -> &SplitMap {
        &self.split
    }

    /// H — the number of HBM switches behind this front end.
    pub fn switches(&self) -> usize {
        self.split.switches()
    }

    /// α — fibers per (ribbon, switch) pair.
    pub fn alpha(&self) -> usize {
        self.split.alpha()
    }

    /// Nominal rate of one fiber (`W · R`).
    pub fn fiber_rate(&self) -> DataRate {
        self.rate_per_wavelength * self.wavelengths_per_fiber as u64
    }

    /// Rate of one HBM switch port (`α · W · R` — the paper's P).
    pub fn port_rate(&self) -> DataRate {
        self.fiber_rate() * self.alpha() as u64
    }

    /// Total ingress rate (`N · F · W · R`); egress is the same again.
    pub fn total_ingress(&self) -> DataRate {
        self.fiber_rate() * (self.ribbons * self.fibers_per_ribbon) as u64
    }

    /// Total package I/O, both directions (`2 · N · F · W · R`).
    pub fn total_io(&self) -> DataRate {
        self.total_ingress() * 2
    }

    /// Per-switch I/O (ingress + egress) — what each HBM switch's memory
    /// system must sustain (`2·N·F·W·R / H`).
    pub fn per_switch_io(&self) -> DataRate {
        self.total_io() / self.switches() as u64
    }

    /// Inject a fault on `(ribbon, fiber)`.
    pub fn set_fault(&mut self, ribbon: usize, fiber: usize, fault: LaneFault) {
        self.faults[ribbon][fiber] = fault;
    }

    /// Health of `(ribbon, fiber)`.
    pub fn fault(&self, ribbon: usize, fiber: usize) -> LaneFault {
        self.faults[ribbon][fiber]
    }

    /// Effective (fault-adjusted) rate of `(ribbon, fiber)`.
    pub fn effective_fiber_rate(&self, ribbon: usize, fiber: usize) -> DataRate {
        self.faults[ribbon][fiber].effective_rate(self.fiber_rate())
    }

    /// Effective ingress capacity arriving at each switch, given faults.
    pub fn effective_switch_capacity(&self) -> Vec<DataRate> {
        let mut caps = vec![DataRate::ZERO; self.switches()];
        for r in 0..self.ribbons {
            for f in 0..self.fibers_per_ribbon {
                let s = self.split.switch_for(r, f);
                caps[s] = caps[s] + self.effective_fiber_rate(r, f);
            }
        }
        caps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_paper_rates() {
        let fe = FrontEnd::reference(SplitPattern::Sequential);
        assert_eq!(fe.alpha(), 4);
        // Fiber: 16 x 40 = 640 Gb/s. Port P = 4 x 640 = 2.56 Tb/s.
        assert_eq!(fe.fiber_rate(), DataRate::from_gbps(640));
        assert_eq!(fe.port_rate(), DataRate::from_gbps(2560));
        // Total ingress 655.36 Tb/s; total I/O 1.31 Pb/s.
        assert_eq!(fe.total_ingress().bps(), 655_360_000_000_000);
        assert_eq!(fe.total_io().bps(), 1_310_720_000_000_000);
        // Per-switch memory I/O: 81.92 Tb/s, matching 4 HBM4 stacks.
        assert_eq!(fe.per_switch_io().tbps(), 81.92);
    }

    #[test]
    fn faults_reduce_switch_capacity() {
        let mut fe = FrontEnd::new(
            2,
            8,
            4,
            DataRate::from_gbps(10),
            4,
            SplitPattern::Sequential,
        )
        .unwrap();
        let healthy = fe.effective_switch_capacity();
        // All switches equal: 2 ribbons x 2 fibers x 40 Gb/s = 160 Gb/s.
        assert!(healthy.iter().all(|&c| c == DataRate::from_gbps(160)));
        fe.set_fault(0, 0, LaneFault::Dead);
        fe.set_fault(1, 1, LaneFault::Degraded(0.5));
        let faulty = fe.effective_switch_capacity();
        // Fibers 0 and 1 of each ribbon feed switch 0 (sequential, α=2).
        assert_eq!(faulty[0], DataRate::from_gbps(160 - 40 - 20));
        assert_eq!(faulty[1], DataRate::from_gbps(160));
        assert_eq!(fe.fault(0, 0), LaneFault::Dead);
        assert_eq!(fe.effective_fiber_rate(0, 0), DataRate::ZERO);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(FrontEnd::new(1, 8, 0, DataRate::from_gbps(40), 4, SplitPattern::Striped).is_err());
        assert!(FrontEnd::new(1, 8, 16, DataRate::ZERO, 4, SplitPattern::Striped).is_err());
        assert!(FrontEnd::new(1, 9, 16, DataRate::from_gbps(40), 4, SplitPattern::Striped).is_err());
    }
}
