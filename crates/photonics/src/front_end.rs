//! The package-level optical front end (§2.2 "Modules"/"Operation").

use rip_units::DataRate;
use serde::{Deserialize, Serialize};

use crate::oeo::LaneFault;
use crate::split::{SplitMap, SplitPattern};

/// The optical front end of one router package: `N` fiber ribbons of `F`
/// fibers, each fiber carrying `W` WDM wavelengths of `R` each, passively
/// coupled into waveguides and spatially split over `H` HBM switches.
///
/// The same `N` ribbons also serve as the egress (each fiber carries a
/// separate set of `W` output wavelengths), so total package I/O is
/// `2·N·F·W·R`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrontEnd {
    /// N — fiber ribbons (and ports per HBM switch).
    pub ribbons: usize,
    /// F — fibers per ribbon.
    pub fibers_per_ribbon: usize,
    /// W — WDM wavelengths per fiber, per direction.
    pub wavelengths_per_fiber: usize,
    /// R — rate per wavelength.
    pub rate_per_wavelength: DataRate,
    split: SplitMap,
    /// Per-(ribbon, fiber) health, for fault injection.
    faults: Vec<Vec<LaneFault>>,
    /// Lost WDM wavelengths, `[ribbon][lambda]` — a failed comb-laser
    /// line takes one wavelength out on every fiber of the ribbon.
    /// Absent in older serialized configs, hence the default.
    #[serde(default)]
    wavelength_faults: Vec<Vec<bool>>,
}

impl FrontEnd {
    /// Build a front end splitting over `switches` with `pattern`.
    pub fn new(
        ribbons: usize,
        fibers_per_ribbon: usize,
        wavelengths_per_fiber: usize,
        rate_per_wavelength: DataRate,
        switches: usize,
        pattern: SplitPattern,
    ) -> Result<Self, String> {
        if wavelengths_per_fiber == 0 || rate_per_wavelength.is_zero() {
            return Err("wavelength count and rate must be positive".into());
        }
        let split = SplitMap::new(ribbons, fibers_per_ribbon, switches, pattern)?;
        Ok(FrontEnd {
            ribbons,
            fibers_per_ribbon,
            wavelengths_per_fiber,
            rate_per_wavelength,
            faults: vec![vec![LaneFault::Healthy; fibers_per_ribbon]; ribbons],
            wavelength_faults: vec![vec![false; wavelengths_per_fiber]; ribbons],
            split,
        })
    }

    /// The paper's reference front end: N=16 ribbons, F=64 fibers, W=16
    /// wavelengths at R=40 Gb/s, split over H=16 switches.
    pub fn reference(pattern: SplitPattern) -> Self {
        FrontEnd::new(16, 64, 16, DataRate::from_gbps(40), 16, pattern)
            .expect("reference front end is valid")
    }

    /// The fiber split map.
    pub fn split(&self) -> &SplitMap {
        &self.split
    }

    /// H — the number of HBM switches behind this front end.
    pub fn switches(&self) -> usize {
        self.split.switches()
    }

    /// α — fibers per (ribbon, switch) pair.
    pub fn alpha(&self) -> usize {
        self.split.alpha()
    }

    /// Nominal rate of one fiber (`W · R`).
    pub fn fiber_rate(&self) -> DataRate {
        self.rate_per_wavelength * self.wavelengths_per_fiber as u64
    }

    /// Rate of one HBM switch port (`α · W · R` — the paper's P).
    pub fn port_rate(&self) -> DataRate {
        self.fiber_rate() * self.alpha() as u64
    }

    /// Total ingress rate (`N · F · W · R`); egress is the same again.
    pub fn total_ingress(&self) -> DataRate {
        self.fiber_rate() * (self.ribbons * self.fibers_per_ribbon) as u64
    }

    /// Total package I/O, both directions (`2 · N · F · W · R`).
    pub fn total_io(&self) -> DataRate {
        self.total_ingress() * 2
    }

    /// Per-switch I/O (ingress + egress) — what each HBM switch's memory
    /// system must sustain (`2·N·F·W·R / H`).
    pub fn per_switch_io(&self) -> DataRate {
        self.total_io() / self.switches() as u64
    }

    /// Inject a fault on `(ribbon, fiber)`.
    pub fn set_fault(&mut self, ribbon: usize, fiber: usize, fault: LaneFault) {
        self.faults[ribbon][fiber] = fault;
    }

    /// Health of `(ribbon, fiber)`.
    pub fn fault(&self, ribbon: usize, fiber: usize) -> LaneFault {
        self.faults[ribbon][fiber]
    }

    /// Mark wavelength `lambda` of `ribbon` lost (`true`) or restored
    /// (`false`) — e.g. one comb-laser line dying takes the wavelength
    /// out on every fiber of the ribbon.
    pub fn set_wavelength_fault(&mut self, ribbon: usize, lambda: usize, lost: bool) {
        assert!(ribbon < self.ribbons, "ribbon {ribbon} out of range");
        assert!(
            lambda < self.wavelengths_per_fiber,
            "wavelength {lambda} out of range"
        );
        if self.wavelength_faults.len() < self.ribbons {
            // Deserialized from an older config without the field.
            self.wavelength_faults = vec![vec![false; self.wavelengths_per_fiber]; self.ribbons];
        }
        self.wavelength_faults[ribbon][lambda] = lost;
    }

    /// Whether wavelength `lambda` of `ribbon` is currently lost.
    pub fn wavelength_lost(&self, ribbon: usize, lambda: usize) -> bool {
        self.wavelength_faults
            .get(ribbon)
            .is_some_and(|v| v.get(lambda).copied().unwrap_or(false))
    }

    /// Number of lost wavelengths on `ribbon`.
    pub fn lost_wavelengths(&self, ribbon: usize) -> usize {
        self.wavelength_faults
            .get(ribbon)
            .map_or(0, |v| v.iter().filter(|&&l| l).count())
    }

    /// Effective (fault-adjusted) rate of `(ribbon, fiber)`: lane faults
    /// and lost wavelengths both shave capacity.
    pub fn effective_fiber_rate(&self, ribbon: usize, fiber: usize) -> DataRate {
        let alive = self.wavelengths_per_fiber - self.lost_wavelengths(ribbon);
        let base = self.rate_per_wavelength * alive as u64;
        self.faults[ribbon][fiber].effective_rate(base)
    }

    /// The split rebuilt with dead switch planes excluded — see
    /// [`SplitMap::degraded`].
    pub fn degraded_split(&self, alive: &[bool]) -> Result<SplitMap, String> {
        self.split.degraded(alive)
    }

    /// Effective ingress capacity arriving at each switch, given faults.
    pub fn effective_switch_capacity(&self) -> Vec<DataRate> {
        let mut caps = vec![DataRate::ZERO; self.switches()];
        for r in 0..self.ribbons {
            for f in 0..self.fibers_per_ribbon {
                let s = self.split.switch_for(r, f);
                caps[s] = caps[s] + self.effective_fiber_rate(r, f);
            }
        }
        caps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_paper_rates() {
        let fe = FrontEnd::reference(SplitPattern::Sequential);
        assert_eq!(fe.alpha(), 4);
        // Fiber: 16 x 40 = 640 Gb/s. Port P = 4 x 640 = 2.56 Tb/s.
        assert_eq!(fe.fiber_rate(), DataRate::from_gbps(640));
        assert_eq!(fe.port_rate(), DataRate::from_gbps(2560));
        // Total ingress 655.36 Tb/s; total I/O 1.31 Pb/s.
        assert_eq!(fe.total_ingress().bps(), 655_360_000_000_000);
        assert_eq!(fe.total_io().bps(), 1_310_720_000_000_000);
        // Per-switch memory I/O: 81.92 Tb/s, matching 4 HBM4 stacks.
        assert_eq!(fe.per_switch_io().tbps(), 81.92);
    }

    #[test]
    fn faults_reduce_switch_capacity() {
        let mut fe = FrontEnd::new(
            2,
            8,
            4,
            DataRate::from_gbps(10),
            4,
            SplitPattern::Sequential,
        )
        .unwrap();
        let healthy = fe.effective_switch_capacity();
        // All switches equal: 2 ribbons x 2 fibers x 40 Gb/s = 160 Gb/s.
        assert!(healthy.iter().all(|&c| c == DataRate::from_gbps(160)));
        fe.set_fault(0, 0, LaneFault::Dead);
        fe.set_fault(1, 1, LaneFault::Degraded(0.5));
        let faulty = fe.effective_switch_capacity();
        // Fibers 0 and 1 of each ribbon feed switch 0 (sequential, α=2).
        assert_eq!(faulty[0], DataRate::from_gbps(160 - 40 - 20));
        assert_eq!(faulty[1], DataRate::from_gbps(160));
        assert_eq!(fe.fault(0, 0), LaneFault::Dead);
        assert_eq!(fe.effective_fiber_rate(0, 0), DataRate::ZERO);
    }

    #[test]
    fn wavelength_loss_shaves_ribbon_capacity() {
        let mut fe = FrontEnd::new(
            2,
            8,
            4,
            DataRate::from_gbps(10),
            4,
            SplitPattern::Sequential,
        )
        .unwrap();
        assert!(!fe.wavelength_lost(0, 1));
        fe.set_wavelength_fault(0, 1, true);
        assert!(fe.wavelength_lost(0, 1));
        assert_eq!(fe.lost_wavelengths(0), 1);
        // Every fiber of ribbon 0 loses 1/4 of its rate; ribbon 1 is whole.
        assert_eq!(fe.effective_fiber_rate(0, 0), DataRate::from_gbps(30));
        assert_eq!(fe.effective_fiber_rate(1, 0), DataRate::from_gbps(40));
        // Each switch sees 2 fibers per ribbon: 30x2 + 40x2 = 140 Gb/s.
        let caps = fe.effective_switch_capacity();
        assert!(caps.iter().all(|&c| c == DataRate::from_gbps(140)));
        fe.set_wavelength_fault(0, 1, false);
        assert_eq!(fe.effective_fiber_rate(0, 0), DataRate::from_gbps(40));
    }

    #[test]
    fn degraded_split_excludes_dead_plane() {
        let fe = FrontEnd::new(2, 8, 4, DataRate::from_gbps(10), 4, SplitPattern::Striped).unwrap();
        let d = fe.degraded_split(&[true, false, true, true]).unwrap();
        for r in 0..2 {
            assert!(d.fibers_for(r, 1).is_empty());
            let total: usize = [0, 2, 3].iter().map(|&s| d.fibers_for(r, s).len()).sum();
            assert_eq!(total, 8);
        }
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(FrontEnd::new(1, 8, 0, DataRate::from_gbps(40), 4, SplitPattern::Striped).is_err());
        assert!(FrontEnd::new(1, 8, 16, DataRate::ZERO, 4, SplitPattern::Striped).is_err());
        assert!(
            FrontEnd::new(1, 9, 16, DataRate::from_gbps(40), 4, SplitPattern::Striped).is_err()
        );
    }
}
