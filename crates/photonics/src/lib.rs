//! In-package photonics model for the Split-Parallel Switch.
//!
//! The paper's key observation (§2.1 Idea 3/4) is that optics should only
//! ever *carry and split* signals — all processing happens inside exactly
//! one HBM switch, so each packet crosses exactly one O/E and one E/O
//! conversion. This crate models precisely that:
//!
//! * [`FrontEnd`] — the package's optical front end: `N` fiber ribbons of
//!   `F` fibers, each fiber carrying `W` WDM wavelengths at `R` Gb/s,
//!   passively coupled onto internal waveguides;
//! * [`SplitMap`] / [`SplitPattern`] — the spatial fiber-splitting layer
//!   that assigns `α = F/H` fibers of every ribbon to each of the `H`
//!   HBM switches, either naively (sequential), round-robin (striped) or
//!   with the paper's pseudo-random pattern (§2.1 Idea 4);
//! * [`OeoConverter`] — pJ/bit energy accounting for O/E–E/O conversions,
//!   the §4 power-model term, with per-lane fault injection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod front_end;
mod oeo;
mod split;

pub use front_end::FrontEnd;
pub use oeo::{LaneFault, OeoConverter};
pub use split::{SplitMap, SplitPattern};
