//! Property tests: the trie agrees with a naive linear-scan LPM, and
//! the compiled stride table agrees with the trie, for arbitrary route
//! sets; removals behave like re-building without the removed route.

use proptest::prelude::*;
use rip_fib::{FibTrie, Ipv4Prefix, StrideTable};

/// Naive reference LPM: scan all routes, keep the longest match.
fn naive_lookup(routes: &[(Ipv4Prefix, u32)], ip: u32) -> Option<(u8, u32)> {
    routes
        .iter()
        .filter(|(p, _)| p.contains(ip))
        .max_by_key(|(p, _)| p.len())
        .map(|(p, h)| (p.len(), h))
        .map(|(l, &h)| (l, h))
}

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Ipv4Prefix::truncating(a, l))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn trie_matches_naive_lpm(
        routes in prop::collection::vec((arb_prefix(), 0u32..16), 0..60),
        probes in prop::collection::vec(any::<u32>(), 1..40),
    ) {
        // Deduplicate by prefix, keeping the last occurrence — the same
        // semantics as sequential trie inserts.
        let mut dedup: std::collections::HashMap<Ipv4Prefix, u32> = Default::default();
        let mut trie = FibTrie::new();
        for (p, h) in &routes {
            dedup.insert(*p, *h);
            trie.insert(*p, *h);
        }
        let flat: Vec<(Ipv4Prefix, u32)> = dedup.into_iter().collect();
        prop_assert_eq!(trie.len(), flat.len());
        for &ip in &probes {
            prop_assert_eq!(trie.lookup(ip), naive_lookup(&flat, ip), "ip {:#010x}", ip);
        }
    }

    #[test]
    fn stride_table_matches_trie(
        // Few long (> stride) prefixes keep the debug-build second-level
        // tables small; coverage of the expansion logic is unchanged.
        routes in prop::collection::vec((arb_prefix(), 0u32..16), 0..12),
        probes in prop::collection::vec(any::<u32>(), 1..40),
        stride in prop::sample::select(vec![14u8, 16]),
    ) {
        let mut trie = FibTrie::new();
        for (p, h) in &routes {
            trie.insert(*p, *h);
        }
        let table = StrideTable::compile(&trie, stride).unwrap();
        for &ip in &probes {
            prop_assert_eq!(
                table.lookup(ip),
                trie.lookup(ip).map(|(_, h)| h),
                "ip {:#010x} stride {}", ip, stride
            );
        }
    }

    #[test]
    fn removal_equals_rebuild_without_route(
        routes in prop::collection::vec((arb_prefix(), 0u32..16), 1..40),
        victim in any::<prop::sample::Index>(),
        probes in prop::collection::vec(any::<u32>(), 1..30),
    ) {
        let mut dedup: std::collections::HashMap<Ipv4Prefix, u32> = Default::default();
        for (p, h) in &routes {
            dedup.insert(*p, *h);
        }
        let flat: Vec<(Ipv4Prefix, u32)> = dedup.into_iter().collect();
        let victim = flat[victim.index(flat.len())].0;

        let mut with_removal = FibTrie::new();
        for (p, h) in &flat {
            with_removal.insert(*p, *h);
        }
        with_removal.remove(victim);

        let mut rebuilt = FibTrie::new();
        for (p, h) in flat.iter().filter(|(p, _)| *p != victim) {
            rebuilt.insert(*p, *h);
        }
        prop_assert_eq!(with_removal.len(), rebuilt.len());
        for &ip in &probes {
            prop_assert_eq!(with_removal.lookup(ip), rebuilt.lookup(ip));
        }
    }

    #[test]
    fn iter_round_trips_through_a_fresh_trie(
        routes in prop::collection::vec((arb_prefix(), 0u32..16), 0..50),
    ) {
        let mut trie = FibTrie::new();
        for (p, h) in &routes {
            trie.insert(*p, *h);
        }
        let mut rebuilt = FibTrie::new();
        for (p, h) in trie.iter() {
            rebuilt.insert(p, h);
        }
        prop_assert_eq!(rebuilt.len(), trie.len());
        let mut a = trie.iter();
        let mut b = rebuilt.iter();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }
}
