//! Synthetic core-router RIBs and trace integration.

use rand::rngs::StdRng;
use rand::Rng;
use rip_sim::rng::{rng_for, weighted_index};
use rip_traffic::Packet;
use serde::{Deserialize, Serialize};

use crate::prefix::Ipv4Prefix;
use crate::stride::StrideTable;
use crate::trie::FibTrie;

/// A seeded synthetic route table shaped like a core BGP table: the
/// prefix-length histogram peaks at /24 with mass at /16–/22 and a thin
/// tail of short prefixes, plus a default route; next hops are egress
/// ribbon indices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticRib {
    routes: Vec<(Ipv4Prefix, u32)>,
    outputs: usize,
}

/// Core-table-like prefix length mix: `(length, relative weight)`.
/// Roughly follows public BGP snapshots: >50 % /24s, a broad /19–/23
/// shoulder, and few short prefixes.
const LENGTH_MIX: &[(u8, f64)] = &[
    (8, 0.4),
    (12, 0.8),
    (16, 6.0),
    (18, 2.5),
    (19, 4.0),
    (20, 6.5),
    (21, 5.5),
    (22, 12.0),
    (23, 9.0),
    (24, 53.0),
];

impl SyntheticRib {
    /// Generate `routes` routes over `outputs` egress ports,
    /// deterministically from `seed`. A default route to output 0 is
    /// always present (core routers always resolve).
    pub fn generate(routes: usize, outputs: usize, seed: u64) -> Self {
        assert!(outputs > 0, "need at least one output");
        let mut rng: StdRng = rng_for(seed, 0xF1B);
        let weights: Vec<f64> = LENGTH_MIX.iter().map(|&(_, w)| w).collect();
        let mut set = std::collections::HashSet::new();
        let mut out = Vec::with_capacity(routes + 1);
        out.push((Ipv4Prefix::DEFAULT, 0u32));
        while out.len() <= routes {
            let len = LENGTH_MIX[weighted_index(&mut rng, &weights).expect("weights")].0;
            let prefix = Ipv4Prefix::truncating(rng.random(), len);
            if set.insert(prefix) {
                out.push((prefix, rng.random_range(0..outputs as u32)));
            }
        }
        SyntheticRib {
            routes: out,
            outputs,
        }
    }

    /// The routes, default first.
    pub fn routes(&self) -> &[(Ipv4Prefix, u32)] {
        &self.routes
    }

    /// Number of routes (incl. the default).
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Never empty (the default route is always present).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Egress port count.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Build the trie FIB.
    pub fn trie(&self) -> FibTrie {
        let mut t = FibTrie::new();
        for &(p, h) in &self.routes {
            t.insert(p, h);
        }
        t
    }

    /// Compile the stride table (via the trie).
    pub fn stride_table(&self, stride: u8) -> StrideTable {
        StrideTable::compile(&self.trie(), stride).expect("valid stride")
    }
}

/// Rewrite each packet's `output` by looking its destination address up
/// in `table` — the §3.2 ➀ "processing chiplet determines the HBM
/// switch output" step applied to a synthetic trace. Packets missing in
/// the FIB (impossible with a default route) are dropped from the
/// returned trace.
pub fn assign_outputs(trace: &[Packet], table: &StrideTable) -> Vec<Packet> {
    trace
        .iter()
        .filter_map(|p| {
            table.lookup(p.flow.dst_ip).map(|hop| {
                let mut q = *p;
                q.output = hop as usize;
                q
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sized() {
        let a = SyntheticRib::generate(10_000, 16, 42);
        let b = SyntheticRib::generate(10_000, 16, 42);
        assert_eq!(a.routes(), b.routes());
        assert_eq!(a.len(), 10_001); // + default
        let c = SyntheticRib::generate(10_000, 16, 43);
        assert_ne!(a.routes(), c.routes());
    }

    #[test]
    fn length_histogram_peaks_at_24() {
        let rib = SyntheticRib::generate(20_000, 16, 7);
        let mut hist = [0usize; 33];
        for (p, _) in rib.routes() {
            hist[p.len() as usize] += 1;
        }
        let frac24 = hist[24] as f64 / rib.len() as f64;
        assert!((0.4..0.65).contains(&frac24), "/24 share {frac24}");
        assert!(hist[22] > hist[16]);
        assert!(hist[8] < hist[16]);
    }

    #[test]
    fn every_address_resolves_via_default() {
        let rib = SyntheticRib::generate(1000, 8, 1);
        let table = rib.stride_table(16);
        let mut rng = rng_for(9, 9);
        for _ in 0..1000 {
            let ip: u32 = rng.random();
            let hop = table.lookup(ip);
            assert!(hop.is_some());
            assert!((hop.unwrap() as usize) < 8);
        }
    }

    #[test]
    fn trie_and_stride_table_agree_on_the_synthetic_rib() {
        let rib = SyntheticRib::generate(5_000, 16, 3);
        let trie = rib.trie();
        let table = rib.stride_table(16);
        let mut rng = rng_for(4, 4);
        for _ in 0..8_000 {
            let ip: u32 = rng.random();
            assert_eq!(
                table.lookup(ip),
                trie.lookup(ip).map(|(_, h)| h),
                "mismatch at {ip:#010x}"
            );
        }
    }

    #[test]
    fn assign_outputs_rewrites_by_destination() {
        use rip_units::{DataSize, SimTime};
        let rib = SyntheticRib::generate(1000, 4, 5);
        let table = rib.stride_table(16);
        let mut rng = rng_for(11, 11);
        let trace: Vec<Packet> = (0..500)
            .map(|i| {
                let mut p = Packet::new(
                    i,
                    (i % 4) as usize,
                    0,
                    DataSize::from_bytes(500),
                    SimTime::from_ns(i),
                );
                p.flow.dst_ip = rng.random();
                p
            })
            .collect();
        let routed = assign_outputs(&trace, &table);
        assert_eq!(routed.len(), 500);
        let trie = rib.trie();
        for p in &routed {
            let (_, hop) = trie.lookup(p.flow.dst_ip).unwrap();
            assert_eq!(p.output, hop as usize);
        }
        // Several distinct outputs are actually used.
        let used: std::collections::HashSet<usize> = routed.iter().map(|p| p.output).collect();
        assert!(used.len() > 1);
    }
}
