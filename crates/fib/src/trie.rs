//! Arena-allocated binary trie with longest-prefix-match.

use serde::{Deserialize, Serialize};

use crate::prefix::Ipv4Prefix;

/// Index of a trie node in the arena (`u32::MAX` = none).
type NodeId = u32;
const NONE: NodeId = u32::MAX;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    children: [NodeId; 2],
    /// Next hop stored at this node, if a prefix ends here.
    next_hop: Option<u32>,
}

impl Node {
    fn new() -> Self {
        Node {
            children: [NONE, NONE],
            next_hop: None,
        }
    }
}

/// A binary (unibit) trie FIB: exact semantics reference for the
/// compiled [`crate::StrideTable`], and the structure route updates are
/// applied to.
///
/// ```
/// use rip_fib::FibTrie;
/// let mut fib = FibTrie::new();
/// fib.insert("0.0.0.0/0".parse().unwrap(), 99);
/// fib.insert("10.1.0.0/16".parse().unwrap(), 2);
/// assert_eq!(fib.lookup(0x0A01_0203), Some((16, 2))); // 10.1.2.3
/// assert_eq!(fib.lookup(0x0B00_0001), Some((0, 99))); // default route
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FibTrie {
    nodes: Vec<Node>,
    routes: usize,
}

impl Default for FibTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl FibTrie {
    /// An empty trie (no default route).
    pub fn new() -> Self {
        FibTrie {
            nodes: vec![Node::new()],
            routes: 0,
        }
    }

    /// Number of routes installed.
    pub fn len(&self) -> usize {
        self.routes
    }

    /// True if no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.routes == 0
    }

    /// Number of arena nodes (memory footprint indicator).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Insert `prefix → next_hop`, replacing any existing route for the
    /// same prefix. Returns the previous next hop, if any.
    pub fn insert(&mut self, prefix: Ipv4Prefix, next_hop: u32) -> Option<u32> {
        let mut cur: NodeId = 0;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            let next = self.nodes[cur as usize].children[b];
            let next = if next == NONE {
                let id = self.nodes.len() as NodeId;
                self.nodes.push(Node::new());
                self.nodes[cur as usize].children[b] = id;
                id
            } else {
                next
            };
            cur = next;
        }
        let old = self.nodes[cur as usize].next_hop.replace(next_hop);
        if old.is_none() {
            self.routes += 1;
        }
        old
    }

    /// Remove the route for exactly `prefix`. Returns its next hop if
    /// it existed. (Arena nodes are retained; route churn in a core FIB
    /// reuses paths constantly, so we trade a little memory for zero
    /// restructuring.)
    pub fn remove(&mut self, prefix: Ipv4Prefix) -> Option<u32> {
        let node = self.locate(prefix)?;
        let old = self.nodes[node as usize].next_hop.take();
        if old.is_some() {
            self.routes -= 1;
        }
        old
    }

    /// Exact-match lookup of a prefix.
    pub fn get(&self, prefix: Ipv4Prefix) -> Option<u32> {
        self.nodes[self.locate(prefix)? as usize].next_hop
    }

    fn locate(&self, prefix: Ipv4Prefix) -> Option<NodeId> {
        let mut cur: NodeId = 0;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            cur = self.nodes[cur as usize].children[b];
            if cur == NONE {
                return None;
            }
        }
        Some(cur)
    }

    /// Longest-prefix-match: the next hop of the most specific prefix
    /// containing `ip`, with the matched length.
    pub fn lookup(&self, ip: u32) -> Option<(u8, u32)> {
        let mut cur: NodeId = 0;
        let mut best: Option<(u8, u32)> = self.nodes[0].next_hop.map(|h| (0, h));
        for i in 0..32u8 {
            let b = ((ip >> (31 - i)) & 1) as usize;
            cur = self.nodes[cur as usize].children[b];
            if cur == NONE {
                break;
            }
            if let Some(h) = self.nodes[cur as usize].next_hop {
                best = Some((i + 1, h));
            }
        }
        best
    }

    /// Iterate over all installed `(prefix, next_hop)` routes in
    /// lexicographic (DFS) order.
    pub fn iter(&self) -> Vec<(Ipv4Prefix, u32)> {
        let mut out = Vec::with_capacity(self.routes);
        self.dfs(0, 0, 0, &mut out);
        out
    }

    fn dfs(&self, node: NodeId, addr: u32, depth: u8, out: &mut Vec<(Ipv4Prefix, u32)>) {
        let n = &self.nodes[node as usize];
        if let Some(h) = n.next_hop {
            out.push((Ipv4Prefix::truncating(addr, depth), h));
        }
        if depth == 32 {
            return;
        }
        for (b, &child) in n.children.iter().enumerate() {
            if child != NONE {
                let next_addr = addr | ((b as u32) << (31 - depth));
                self.dfs(child, next_addr, depth + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn empty_trie_matches_nothing() {
        let t = FibTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(0x0A000001), None);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = FibTrie::new();
        t.insert(p("0.0.0.0/0"), 99);
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        t.insert(p("10.1.2.0/24"), 3);
        assert_eq!(t.lookup(0x0A010203), Some((24, 3))); // 10.1.2.3
        assert_eq!(t.lookup(0x0A010300), Some((16, 2))); // 10.1.3.0
        assert_eq!(t.lookup(0x0A020000), Some((8, 1))); // 10.2.0.0
        assert_eq!(t.lookup(0x0B000000), Some((0, 99))); // default
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn insert_replaces_and_reports_old() {
        let mut t = FibTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 7), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(0x0A000000), Some((8, 7)));
    }

    #[test]
    fn remove_exposes_less_specific() {
        let mut t = FibTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        assert_eq!(t.remove(p("10.1.0.0/16")), Some(2));
        assert_eq!(t.lookup(0x0A010000), Some((8, 1)));
        assert_eq!(t.remove(p("10.1.0.0/16")), None);
        assert_eq!(t.remove(p("192.168.0.0/16")), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn host_routes_work() {
        let mut t = FibTrie::new();
        t.insert(p("1.2.3.4/32"), 5);
        assert_eq!(t.lookup(0x01020304), Some((32, 5)));
        assert_eq!(t.lookup(0x01020305), None);
    }

    #[test]
    fn get_is_exact_not_lpm() {
        let mut t = FibTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(1));
        assert_eq!(t.get(p("10.1.0.0/16")), None);
    }

    #[test]
    fn iter_returns_all_routes() {
        let mut t = FibTrie::new();
        let routes = [("0.0.0.0/0", 9), ("10.0.0.0/8", 1), ("192.168.1.0/24", 2)];
        for (s, h) in routes {
            t.insert(p(s), h);
        }
        let got = t.iter();
        assert_eq!(got.len(), 3);
        for (s, h) in routes {
            assert!(got.contains(&(p(s), h)));
        }
    }

    #[test]
    fn sibling_prefixes_do_not_interfere() {
        let mut t = FibTrie::new();
        t.insert(p("128.0.0.0/1"), 1);
        t.insert(p("0.0.0.0/1"), 2);
        assert_eq!(t.lookup(0xFFFF_FFFF), Some((1, 1)));
        assert_eq!(t.lookup(0x0000_0001), Some((1, 2)));
    }
}
