//! IPv4 prefixes.

use core::fmt;
use core::str::FromStr;
use serde::{Deserialize, Serialize};

/// A validated IPv4 prefix: `addr/len` with all host bits zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Ipv4Prefix = Ipv4Prefix { addr: 0, len: 0 };

    /// Construct from a network address and prefix length.
    ///
    /// Returns an error if `len > 32` or host bits are set.
    pub fn new(addr: u32, len: u8) -> Result<Self, String> {
        if len > 32 {
            return Err(format!("prefix length {len} > 32"));
        }
        let p = Ipv4Prefix { addr, len };
        if addr & !p.mask() != 0 {
            return Err(format!("host bits set in {}/{len}", fmt_addr(addr)));
        }
        Ok(p)
    }

    /// Construct, truncating any host bits instead of erroring.
    pub fn truncating(addr: u32, len: u8) -> Self {
        let len = len.min(32);
        let p = Ipv4Prefix { addr: 0, len };
        Ipv4Prefix {
            addr: addr & p.mask(),
            len,
        }
    }

    /// The network address.
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// The prefix length.
    #[allow(clippy::len_without_is_empty)] // length in bits, not a container
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the zero-length default route.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The netmask.
    pub fn mask(&self) -> u32 {
        if self.len == 0 {
            0
        } else {
            u32::MAX << (32 - self.len)
        }
    }

    /// True if `ip` falls inside this prefix.
    pub fn contains(&self, ip: u32) -> bool {
        ip & self.mask() == self.addr
    }

    /// True if `other` is fully inside this prefix.
    pub fn covers(&self, other: &Ipv4Prefix) -> bool {
        other.len >= self.len && self.contains(other.addr)
    }

    /// The `i`-th bit of the network address, MSB first (bit 0 is the
    /// top bit) — the trie descent order.
    pub fn bit(&self, i: u8) -> bool {
        debug_assert!(i < 32);
        (self.addr >> (31 - i)) & 1 == 1
    }
}

fn fmt_addr(a: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        (a >> 24) & 0xFF,
        (a >> 16) & 0xFF,
        (a >> 8) & 0xFF,
        a & 0xFF
    )
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", fmt_addr(self.addr), self.len)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let (ip, len) = s
            .split_once('/')
            .ok_or_else(|| format!("missing '/' in prefix {s:?}"))?;
        let len: u8 = len.parse().map_err(|_| format!("bad length in {s:?}"))?;
        let octets: Vec<&str> = ip.split('.').collect();
        if octets.len() != 4 {
            return Err(format!("bad IPv4 address in {s:?}"));
        }
        let mut addr: u32 = 0;
        for o in octets {
            let v: u8 = o.parse().map_err(|_| format!("bad octet {o:?} in {s:?}"))?;
            addr = (addr << 8) | v as u32;
        }
        Ipv4Prefix::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let p: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();
        assert_eq!(p.addr(), 0x0A01_0000);
        assert_eq!(p.len(), 16);
        assert_eq!(p.to_string(), "10.1.0.0/16");
        let d: Ipv4Prefix = "0.0.0.0/0".parse().unwrap();
        assert!(d.is_default());
        assert_eq!(d, Ipv4Prefix::DEFAULT);
    }

    #[test]
    fn rejects_malformed() {
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.1/24".parse::<Ipv4Prefix>().is_err()); // host bits
        assert!("10.0.0/24".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.256/24".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn truncating_clears_host_bits() {
        let p = Ipv4Prefix::truncating(0x0A00_00FF, 24);
        assert_eq!(p, "10.0.0.0/24".parse().unwrap());
        assert_eq!(Ipv4Prefix::truncating(u32::MAX, 40).len(), 32);
    }

    #[test]
    fn containment() {
        let p: Ipv4Prefix = "192.168.0.0/16".parse().unwrap();
        assert!(p.contains(0xC0A8_1234));
        assert!(!p.contains(0xC0A9_0000));
        let q: Ipv4Prefix = "192.168.4.0/24".parse().unwrap();
        assert!(p.covers(&q));
        assert!(!q.covers(&p));
        assert!(Ipv4Prefix::DEFAULT.contains(0xDEAD_BEEF));
    }

    #[test]
    fn bits_msb_first() {
        let p: Ipv4Prefix = "128.0.0.0/1".parse().unwrap();
        assert!(p.bit(0));
        let q: Ipv4Prefix = "64.0.0.0/2".parse().unwrap();
        assert!(!q.bit(0));
        assert!(q.bit(1));
    }

    #[test]
    fn masks() {
        assert_eq!(Ipv4Prefix::DEFAULT.mask(), 0);
        let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        assert_eq!(p.mask(), 0xFF00_0000);
        let h: Ipv4Prefix = "1.2.3.4/32".parse().unwrap();
        assert_eq!(h.mask(), u32::MAX);
    }
}
