//! Forwarding substrate for the router-in-a-package reproduction.
//!
//! §3.2 ➀ of the paper: "a processing chiplet determines the HBM switch
//! output for incoming variable-length packets". That determination is
//! an IPv4 longest-prefix-match against a core-router FIB. This crate
//! provides that substrate:
//!
//! * [`Ipv4Prefix`] — validated prefixes with parsing and containment;
//! * [`FibTrie`] — an arena-allocated binary trie with insert / remove /
//!   exact-match / longest-prefix-match;
//! * [`StrideTable`] — a DIR-24-8-style flat lookup table compiled from
//!   a trie (first-level stride configurable so tests stay small),
//!   giving O(1)–O(2) lookups as a linecard pipeline would;
//! * [`SyntheticRib`] — seeded core-BGP-like route tables (prefix-length
//!   mix peaking at /24) mapping prefixes to egress ribbons;
//! * [`assign_outputs`] — rewrite a packet trace's outputs by looking up
//!   each packet's destination address, wiring the FIB into the switch
//!   simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod prefix;
mod rib;
mod stride;
mod trie;

pub use prefix::Ipv4Prefix;
pub use rib::{assign_outputs, SyntheticRib};
pub use stride::StrideTable;
pub use trie::FibTrie;
