//! A DIR-24-8-style compiled lookup table: one flat first-level array
//! indexed by the top `stride` bits, with per-chunk second-level arrays
//! for longer prefixes — the constant-time structure a linecard
//! pipeline uses, compiled from the [`FibTrie`].

use serde::{Deserialize, Serialize};

use crate::trie::FibTrie;

/// Packed table entry, as the hardware tables store it:
/// `0` = no route; `1..=0x7FFF_FFFF` = next hop + 1;
/// `>= 0x8000_0000` = second-level table index (first level only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(transparent)]
struct Entry(u32);

const INDIRECT_BIT: u32 = 0x8000_0000;

impl Entry {
    const EMPTY: Entry = Entry(0);

    fn direct(hop: Option<u32>) -> Entry {
        match hop {
            None => Entry(0),
            Some(h) => {
                debug_assert!(h < INDIRECT_BIT - 1, "next hop too large to pack");
                Entry(h + 1)
            }
        }
    }

    fn indirect(idx: u32) -> Entry {
        debug_assert!(idx < INDIRECT_BIT);
        Entry(INDIRECT_BIT | idx)
    }

    fn is_indirect(self) -> bool {
        self.0 & INDIRECT_BIT != 0
    }

    fn as_indirect(self) -> u32 {
        self.0 & !INDIRECT_BIT
    }

    fn as_direct(self) -> Option<u32> {
        debug_assert!(!self.is_indirect());
        self.0.checked_sub(1)
    }
}

/// The compiled stride table.
///
/// The classic hardware configuration is a 2²⁴-entry first level
/// ("DIR-24-8"); the stride is configurable so tests can run with 2¹⁶
/// entries. Lookup cost: one memory access for prefixes up to the
/// stride length, two beyond it — independent of table size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrideTable {
    stride: u8,
    level1: Vec<Entry>,
    /// Each second-level table covers the remaining `32 − stride` bits
    /// of one chunk (packed hop+1 values, 0 = none).
    level2: Vec<Vec<u32>>,
}

impl StrideTable {
    /// Compile a trie into a stride table with the given first-level
    /// stride (8–24 bits).
    pub fn compile(trie: &FibTrie, stride: u8) -> Result<Self, String> {
        if !(8..=24).contains(&stride) {
            return Err(format!("stride {stride} out of 8..=24"));
        }
        let l1_size = 1usize << stride;
        let mut level1 = vec![Entry::EMPTY; l1_size];
        let mut level2: Vec<Vec<u32>> = Vec::new();
        let rest_bits = 32 - stride;

        // Pass 1: prefixes no longer than the stride expand into runs
        // of first-level entries; longer-first ordering is achieved by
        // sorting routes by prefix length ascending so more-specific
        // routes overwrite less-specific ones.
        let mut routes = trie.iter();
        routes.sort_by_key(|(p, _)| p.len());
        for (prefix, hop) in routes.iter().filter(|(p, _)| p.len() <= stride) {
            let base = (prefix.addr() >> rest_bits) as usize;
            let span = 1usize << (stride - prefix.len());
            for e in level1.iter_mut().skip(base).take(span) {
                debug_assert!(!e.is_indirect(), "pass 1 precedes pass 2");
                *e = Entry::direct(Some(*hop));
            }
        }
        // Pass 2: longer prefixes materialize second-level tables,
        // seeded with the chunk's current (less-specific) answer.
        for (prefix, hop) in routes.iter().filter(|(p, _)| p.len() > stride) {
            let chunk = (prefix.addr() >> rest_bits) as usize;
            let table_idx = if level1[chunk].is_indirect() {
                level1[chunk].as_indirect() as usize
            } else {
                let default = level1[chunk];
                let idx = level2.len();
                level2.push(vec![default.0; 1usize << rest_bits]);
                level1[chunk] = Entry::indirect(idx as u32);
                idx
            };
            let inner_bits = prefix.len() - stride;
            let inner_base =
                ((prefix.addr() & !(u32::MAX << rest_bits)) >> (rest_bits - inner_bits)) as usize;
            let span = 1usize << (rest_bits - inner_bits);
            let start = inner_base << (rest_bits - inner_bits);
            for e in level2[table_idx].iter_mut().skip(start).take(span) {
                *e = Entry::direct(Some(*hop)).0;
            }
        }
        Ok(StrideTable {
            stride,
            level1,
            level2,
        })
    }

    /// Longest-prefix-match lookup (next hop only; length is a trie
    /// concern).
    pub fn lookup(&self, ip: u32) -> Option<u32> {
        let rest_bits = 32 - self.stride;
        let e = self.level1[(ip >> rest_bits) as usize];
        if e.is_indirect() {
            let packed =
                self.level2[e.as_indirect() as usize][(ip & !(u32::MAX << rest_bits)) as usize];
            packed.checked_sub(1)
        } else {
            e.as_direct()
        }
    }

    /// The first-level stride in bits.
    pub fn stride(&self) -> u8 {
        self.stride
    }

    /// Memory footprint in bytes (4 B packed entries at both levels —
    /// the in-memory representation).
    pub fn memory_bytes(&self) -> usize {
        (self.level1.len() + self.level2.iter().map(Vec::len).sum::<usize>()) * 4
    }

    /// Number of second-level tables materialized.
    pub fn level2_tables(&self) -> usize {
        self.level2.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::Ipv4Prefix;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn build(routes: &[(&str, u32)], stride: u8) -> (FibTrie, StrideTable) {
        let mut t = FibTrie::new();
        for (s, h) in routes {
            t.insert(p(s), *h);
        }
        let st = StrideTable::compile(&t, stride).unwrap();
        (t, st)
    }

    #[test]
    fn agrees_with_trie_on_basic_routes() {
        let (t, st) = build(
            &[
                ("0.0.0.0/0", 9),
                ("10.0.0.0/8", 1),
                ("10.1.0.0/16", 2),
                ("10.1.2.0/24", 3),
                ("192.168.0.0/16", 4),
                ("1.2.3.4/32", 5),
            ],
            16,
        );
        for ip in [
            0x0A010203u32,
            0x0A010300,
            0x0A020000,
            0x0B000000,
            0xC0A80001,
            0x01020304,
            0x01020305,
            0xFFFFFFFF,
            0,
        ] {
            assert_eq!(
                st.lookup(ip),
                t.lookup(ip).map(|(_, h)| h),
                "mismatch at {ip:#010x}"
            );
        }
    }

    #[test]
    fn longer_than_stride_prefixes_use_level2() {
        let (_, st) = build(&[("10.1.2.0/24", 3)], 16);
        assert_eq!(st.level2_tables(), 1);
        assert_eq!(st.lookup(0x0A010205), Some(3));
        assert_eq!(st.lookup(0x0A010305), None);
    }

    #[test]
    fn chunk_default_is_preserved_inside_level2() {
        // /8 covers the chunk; /24 punches a hole; the rest of the
        // chunk must still answer with the /8 hop.
        let (_, st) = build(&[("10.0.0.0/8", 1), ("10.1.2.0/24", 3)], 16);
        assert_eq!(st.lookup(0x0A010203), Some(3));
        assert_eq!(st.lookup(0x0A01FF00), Some(1));
    }

    #[test]
    fn empty_table_answers_none() {
        let (_, st) = build(&[], 16);
        assert_eq!(st.lookup(0x12345678), None);
        assert_eq!(st.level2_tables(), 0);
    }

    #[test]
    fn stride_bounds_validated() {
        let t = FibTrie::new();
        assert!(StrideTable::compile(&t, 7).is_err());
        assert!(StrideTable::compile(&t, 25).is_err());
        assert!(StrideTable::compile(&t, 24).is_ok());
    }

    #[test]
    fn memory_accounting_scales_with_tables() {
        let (_, small) = build(&[("10.0.0.0/8", 1)], 16);
        let (_, more) = build(
            &[("10.0.0.0/8", 1), ("10.1.2.0/24", 3), ("10.2.2.0/24", 4)],
            16,
        );
        assert!(more.memory_bytes() > small.memory_bytes());
        assert_eq!(more.level2_tables(), 2);
    }
}
