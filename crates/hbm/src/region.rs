//! Per-output HBM region allocation (§3.2 "HBM memory organization"):
//! "This region allocation could be static, or dynamic with large
//! per-output pages. … With dynamic allocation using large per-output
//! pages, a small extra amount of SRAM would suffice to track pointers
//! to these large pages."

use std::collections::VecDeque;

use rip_units::DataSize;
use serde::{Deserialize, Serialize};

/// How the HBM rows are divided among the `N` per-output FIFO regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionMode {
    /// Fixed `1/N` of every bank per output; head/tail/count tracked
    /// with plain counters (zero pointer SRAM).
    Static,
    /// Outputs draw large pages (`page_rows` rows across all banks and
    /// channels) from a shared free list, so a hot output can claim idle
    /// outputs' buffer space; a page-pointer table in SRAM tracks the
    /// FIFO of pages per output.
    DynamicPages {
        /// Rows per page (per bank).
        page_rows: u64,
    },
}

/// Per-output page FIFO state (dynamic mode).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct OutputPages {
    /// Page ids currently held, oldest first.
    pages: VecDeque<u64>,
    /// Page position (slot/slots_per_page) of `pages.front()`.
    first_page_pos: u64,
}

/// Maps `(output, frame slot)` to a row and manages page churn.
///
/// A frame's "slot" is its per-bank segment index `n / (L/γ)`; the
/// allocator is agnostic to groups and channels because PFI writes the
/// same row index into every bank of the frame's group on every channel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionAllocator {
    mode: RegionMode,
    rows_per_bank: u64,
    segs_per_row: u64,
    num_outputs: usize,
    /// Dynamic state (unused in static mode).
    free_pages: Vec<u64>,
    per_output: Vec<OutputPages>,
}

impl RegionAllocator {
    /// Build an allocator. `rows_per_bank` and `segs_per_row` come from
    /// the device geometry and segment size.
    pub fn new(
        mode: RegionMode,
        rows_per_bank: u64,
        segs_per_row: u64,
        num_outputs: usize,
    ) -> Result<Self, String> {
        if rows_per_bank == 0 || segs_per_row == 0 || num_outputs == 0 {
            return Err("allocator dimensions must be positive".into());
        }
        match mode {
            RegionMode::Static => {
                if rows_per_bank < num_outputs as u64 {
                    return Err("fewer rows than outputs for static regions".into());
                }
            }
            RegionMode::DynamicPages { page_rows } => {
                if page_rows == 0 || !rows_per_bank.is_multiple_of(page_rows) {
                    return Err(format!(
                        "page size {page_rows} must evenly divide {rows_per_bank} rows"
                    ));
                }
                let pages = rows_per_bank / page_rows;
                if pages < num_outputs as u64 {
                    return Err("fewer pages than outputs".into());
                }
            }
        }
        let free_pages = match mode {
            RegionMode::Static => Vec::new(),
            RegionMode::DynamicPages { page_rows } => {
                // LIFO free list, low page ids handed out first.
                (0..rows_per_bank / page_rows).rev().collect()
            }
        };
        Ok(RegionAllocator {
            mode,
            rows_per_bank,
            segs_per_row,
            num_outputs,
            free_pages,
            per_output: vec![OutputPages::default(); num_outputs],
        })
    }

    /// The allocation mode.
    pub fn mode(&self) -> RegionMode {
        self.mode
    }

    /// Slots each page holds (dynamic mode).
    fn slots_per_page(&self, page_rows: u64) -> u64 {
        page_rows * self.segs_per_row
    }

    /// Static per-output capacity, in slots.
    pub fn static_slots_per_output(&self) -> u64 {
        (self.rows_per_bank / self.num_outputs as u64) * self.segs_per_row
    }

    /// True if a write at `slot` for `output` can be placed
    /// (`buffered_slots` = slots currently occupied, i.e. written and
    /// not yet read — the controller's counter difference in slot
    /// units... in practice callers pass the *frame* counters scaled).
    pub fn can_accept(&self, output: usize, slot: u64, buffered_slots: u64) -> bool {
        match self.mode {
            RegionMode::Static => buffered_slots < self.static_slots_per_output(),
            RegionMode::DynamicPages { page_rows } => {
                let spp = self.slots_per_page(page_rows);
                let pos = slot / spp;
                let out = &self.per_output[output];
                let rel = pos.checked_sub(out.first_page_pos).expect("slot regressed");
                rel < out.pages.len() as u64 || !self.free_pages.is_empty()
            }
        }
    }

    /// Row for a *write* at `slot` of `output`, allocating a page at
    /// page boundaries in dynamic mode. Returns `None` when out of
    /// pages (caller drops the frame).
    pub fn row_for_write(&mut self, output: usize, slot: u64) -> Option<u64> {
        match self.mode {
            RegionMode::Static => Some(self.static_row(output, slot)),
            RegionMode::DynamicPages { page_rows } => {
                let spp = self.slots_per_page(page_rows);
                let pos = slot / spp;
                let rel = pos
                    .checked_sub(self.per_output[output].first_page_pos)
                    .expect("write slot regressed");
                debug_assert!(rel <= self.per_output[output].pages.len() as u64);
                if rel == self.per_output[output].pages.len() as u64 {
                    let page = self.free_pages.pop()?;
                    self.per_output[output].pages.push_back(page);
                }
                let page = self.per_output[output].pages[rel as usize];
                Some(page * page_rows + (slot % spp) / self.segs_per_row)
            }
        }
    }

    /// Row for a *read* at `slot` of `output`. Frees the page when
    /// `done_with_slot` is later called past its last slot.
    pub fn row_for_read(&self, output: usize, slot: u64) -> u64 {
        match self.mode {
            RegionMode::Static => self.static_row(output, slot),
            RegionMode::DynamicPages { page_rows } => {
                let spp = self.slots_per_page(page_rows);
                let pos = slot / spp;
                let out = &self.per_output[output];
                let rel = pos
                    .checked_sub(out.first_page_pos)
                    .expect("read slot regressed");
                let page = out.pages[rel as usize];
                page * page_rows + (slot % spp) / self.segs_per_row
            }
        }
    }

    /// Notify that every frame up to and including the one at `slot`
    /// whose group index made it the *last* frame of that slot has been
    /// read; when a page's final slot completes, the page returns to the
    /// free list. Call with the read frame counter *after* the read.
    pub fn reads_advanced_to(&mut self, output: usize, next_read_slot: u64) {
        if let RegionMode::DynamicPages { page_rows } = self.mode {
            let spp = self.slots_per_page(page_rows);
            let out = &mut self.per_output[output];
            while !out.pages.is_empty() && next_read_slot / spp > out.first_page_pos {
                let page = out.pages.pop_front().expect("nonempty");
                self.free_pages.push(page);
                out.first_page_pos += 1;
            }
        }
    }

    /// Pages currently held by `output` (dynamic mode; 0 in static).
    pub fn pages_held(&self, output: usize) -> usize {
        self.per_output[output].pages.len()
    }

    /// Pages on the free list (dynamic mode).
    pub fn pages_free(&self) -> usize {
        self.free_pages.len()
    }

    /// The "small extra amount of SRAM" for the page-pointer state:
    /// one pointer per page plus a head/tail pair per output. Static
    /// mode needs only the counters (≈16 B per output).
    pub fn pointer_sram(&self) -> DataSize {
        match self.mode {
            RegionMode::Static => DataSize::from_bytes(16 * self.num_outputs as u64),
            RegionMode::DynamicPages { page_rows } => {
                let pages = self.rows_per_bank / page_rows;
                DataSize::from_bytes(8 * pages + 16 * self.num_outputs as u64)
            }
        }
    }

    fn static_row(&self, output: usize, slot: u64) -> u64 {
        let rows_per_region = self.rows_per_bank / self.num_outputs as u64;
        let row_in_region = (slot / self.segs_per_row) % rows_per_region;
        output as u64 * rows_per_region + row_in_region
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dyn_alloc() -> RegionAllocator {
        // 16 rows/bank, 2 segs/row, 4 outputs, pages of 2 rows
        // -> 8 pages of 4 slots each.
        RegionAllocator::new(RegionMode::DynamicPages { page_rows: 2 }, 16, 2, 4).unwrap()
    }

    #[test]
    fn static_rows_match_legacy_mapping() {
        let a = RegionAllocator::new(RegionMode::Static, 16, 2, 4).unwrap();
        // 4 rows per region; rows wrap FIFO within the region.
        assert_eq!(a.static_row(0, 0), 0);
        assert_eq!(a.static_row(0, 1), 0); // 2 segs per row
        assert_eq!(a.static_row(0, 2), 1);
        assert_eq!(a.static_row(0, 8), 0); // wrap after 4 rows
        assert_eq!(a.static_row(2, 0), 8);
        assert_eq!(a.pointer_sram(), DataSize::from_bytes(64));
    }

    #[test]
    fn static_capacity_caps_each_output() {
        let a = RegionAllocator::new(RegionMode::Static, 16, 2, 4).unwrap();
        assert_eq!(a.static_slots_per_output(), 8);
        assert!(a.can_accept(0, 0, 7));
        assert!(!a.can_accept(0, 0, 8));
    }

    #[test]
    fn dynamic_allocates_and_frees_pages_fifo() {
        let mut a = dyn_alloc();
        assert_eq!(a.pages_free(), 8);
        // Output 0 writes 5 slots: needs 2 pages (4 slots each).
        for slot in 0..5 {
            let row = a.row_for_write(0, slot).expect("pages available");
            assert!(row < 16);
        }
        assert_eq!(a.pages_held(0), 2);
        assert_eq!(a.pages_free(), 6);
        // Reads of the same rows return identical indices.
        for slot in 0..5 {
            let w = a.row_for_write(0, slot).unwrap();
            assert_eq!(a.row_for_read(0, slot), w);
        }
        // Reading past slot 3 frees the first page.
        a.reads_advanced_to(0, 4);
        assert_eq!(a.pages_held(0), 1);
        assert_eq!(a.pages_free(), 7);
        // Low page ids are handed out first and recycled.
        let recycled = a.row_for_write(1, 0).unwrap();
        assert!(recycled < 16);
    }

    #[test]
    fn dynamic_lets_one_output_take_everything_then_starve_others() {
        let mut a = dyn_alloc();
        // Output 0 grabs all 8 pages (32 slots).
        for slot in 0..32 {
            assert!(a.row_for_write(0, slot).is_some(), "slot {slot}");
        }
        assert_eq!(a.pages_free(), 0);
        assert!(!a.can_accept(1, 0, 0));
        assert!(a.row_for_write(1, 0).is_none());
        // Static mode would have capped output 0 at 8 slots but output 1
        // would still be accepted.
        let s = RegionAllocator::new(RegionMode::Static, 16, 2, 4).unwrap();
        assert!(!s.can_accept(0, 0, 8));
        assert!(s.can_accept(1, 0, 0));
    }

    #[test]
    fn dynamic_rows_of_live_outputs_never_collide() {
        let mut a = dyn_alloc();
        // Interleave writes from all outputs and check row disjointness
        // among currently-held pages.
        let mut rows: Vec<Vec<u64>> = vec![Vec::new(); 4];
        for slot in 0..4 {
            for (o, row) in rows.iter_mut().enumerate() {
                row.push(a.row_for_write(o, slot).unwrap());
            }
        }
        for o1 in 0..4 {
            for o2 in (o1 + 1)..4 {
                for r1 in &rows[o1] {
                    assert!(!rows[o2].contains(r1), "row {r1} shared by {o1} and {o2}");
                }
            }
        }
    }

    #[test]
    fn pointer_sram_is_small() {
        let a = dyn_alloc();
        // 8 pages x 8 B + 4 outputs x 16 B = 128 B.
        assert_eq!(a.pointer_sram(), DataSize::from_bytes(128));
        // Reference-scale: 16k rows/bank, pages of 64 rows -> 256 pages
        // -> ~2 KiB of pointers: "a small extra amount of SRAM".
        let big =
            RegionAllocator::new(RegionMode::DynamicPages { page_rows: 64 }, 16 * 1024, 2, 16)
                .unwrap();
        assert!(big.pointer_sram() < DataSize::from_kib(4));
    }

    #[test]
    fn validation_rejects_bad_pages() {
        assert!(RegionAllocator::new(RegionMode::DynamicPages { page_rows: 3 }, 16, 2, 4).is_err());
        assert!(RegionAllocator::new(RegionMode::DynamicPages { page_rows: 0 }, 16, 2, 4).is_err());
        assert!(RegionAllocator::new(RegionMode::DynamicPages { page_rows: 8 }, 16, 2, 4).is_err());
        assert!(RegionAllocator::new(RegionMode::Static, 2, 2, 4).is_err());
        assert!(RegionAllocator::new(RegionMode::Static, 0, 2, 4).is_err());
    }
}
