//! Activity-based HBM energy accounting: a bottom-up cross-check of
//! §4's "each HBM4 stack should consume about 75 W" figure, computed
//! from the commands the device model actually executed rather than
//! from the datasheet constant.

use rip_units::{Power, TimeDelta};
use serde::{Deserialize, Serialize};

use crate::channel::ChannelStats;
use crate::group::HbmGroup;

/// Per-operation energy coefficients.
///
/// Representative HBM-class values (the exact figures are proprietary;
/// these are in the range published for HBM2E/HBM3 academic power
/// models, scaled for HBM4's lower pJ/bit):
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HbmEnergyModel {
    /// Data movement energy per bit (core + IO), pJ/bit.
    pub pj_per_bit: f64,
    /// Energy per row activation (ACT), nJ.
    pub nj_per_act: f64,
    /// Energy per precharge (PRE), nJ.
    pub nj_per_pre: f64,
    /// Energy per single-bank refresh (REFsb), nJ.
    pub nj_per_refresh: f64,
    /// Background (standby/leakage/PLL) power per channel, mW.
    pub background_mw_per_channel: f64,
}

impl HbmEnergyModel {
    /// Reference HBM4-class coefficients, calibrated so that a stack at
    /// peak duty lands near the paper's 75 W datapoint (\[52\]).
    pub const fn hbm4() -> Self {
        HbmEnergyModel {
            pj_per_bit: 3.0,
            nj_per_act: 1.5,
            nj_per_pre: 0.4,
            nj_per_refresh: 2.0,
            background_mw_per_channel: 180.0,
        }
    }

    /// Energy consumed by one channel's recorded activity, in joules
    /// (excluding background power).
    pub fn dynamic_joules(&self, stats: &ChannelStats) -> f64 {
        let bits = (stats.bits_read + stats.bits_written) as f64;
        bits * self.pj_per_bit * 1e-12
            + stats.activates.get() as f64 * self.nj_per_act * 1e-9
            + stats.precharges.get() as f64 * self.nj_per_pre * 1e-9
            + stats.refreshes.get() as f64 * self.nj_per_refresh * 1e-9
    }

    /// Mean power of a whole group over `elapsed`, including background.
    pub fn group_power(&self, group: &HbmGroup, elapsed: TimeDelta) -> Power {
        if elapsed.is_zero() {
            return Power::ZERO;
        }
        let dynamic: f64 = group
            .channels()
            .map(|c| self.dynamic_joules(c.stats()))
            .sum();
        let background_w = self.background_mw_per_channel * 1e-3 * group.num_channels() as f64;
        Power::from_watts(dynamic / elapsed.as_secs_f64() + background_w)
    }

    /// Per-stack mean power (group power divided by the stack count).
    pub fn stack_power(&self, group: &HbmGroup, elapsed: TimeDelta) -> Power {
        self.group_power(group, elapsed) / group.num_stacks() as f64
    }
}

impl Default for HbmEnergyModel {
    fn default() -> Self {
        Self::hbm4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{PfiConfig, PfiController};
    use crate::geometry::HbmGeometry;
    use crate::timing::HbmTiming;
    use rip_units::SimTime;

    #[test]
    fn idle_group_draws_only_background() {
        let model = HbmEnergyModel::hbm4();
        let group = HbmGroup::reference();
        let p = model.group_power(&group, TimeDelta::from_us(10));
        // 128 channels x 180 mW = 23.04 W of background.
        assert!((p.watts() - 23.04).abs() < 1e-9, "{}", p.watts());
        assert_eq!(model.group_power(&group, TimeDelta::ZERO), Power::ZERO);
    }

    #[test]
    fn sustained_pfi_stack_power_lands_near_the_paper_datapoint() {
        // Run the full-width reference group at peak duty and check the
        // activity-based per-stack power against §4's ~75 W.
        let mut group = HbmGroup::new(1, HbmGeometry::hbm4(), HbmTiming::hbm4());
        let mut pfi = PfiController::new(PfiConfig::reference(), &group).unwrap();
        let rep = pfi.run_sustained(&mut group, 2_000);
        let model = HbmEnergyModel::hbm4();
        let p = model.stack_power(&group, rep.elapsed);
        assert!(
            (40.0..110.0).contains(&p.watts()),
            "activity-based stack power {} W should be near the 75 W datapoint",
            p.watts()
        );
    }

    #[test]
    fn power_scales_with_utilization() {
        let model = HbmEnergyModel::hbm4();
        let mk = |frames| {
            let mut group = HbmGroup::new(1, HbmGeometry::hbm4(), HbmTiming::hbm4());
            let mut pfi = PfiController::new(PfiConfig::reference(), &group).unwrap();
            let rep = pfi.run_sustained(&mut group, frames);
            // Amortize over twice the busy window = ~50% duty for the
            // same activity.
            (
                model.group_power(&group, rep.elapsed).watts(),
                model.group_power(&group, rep.elapsed * 2).watts(),
            )
        };
        let (full, half) = mk(400);
        assert!(full > half, "{full} !> {half}");
        // Idle share: the half-duty case sits between background and
        // full power.
        let background = 32.0 * 0.18;
        assert!(half > background && half < full);
    }

    #[test]
    fn dynamic_energy_accumulates_per_command() {
        use crate::channel::{Channel, Direction};
        use rip_units::{DataRate, DataSize};
        let model = HbmEnergyModel::hbm4();
        let mut ch = Channel::new(HbmTiming::hbm4(), DataRate::from_gbps(640), 8);
        assert_eq!(model.dynamic_joules(ch.stats()), 0.0);
        ch.activate(SimTime::ZERO, 0, 0).unwrap();
        let e_act = model.dynamic_joules(ch.stats());
        assert!((e_act - 1.5e-9).abs() < 1e-15);
        let ready = ch.bank(0).ready_for_cas();
        ch.access(ready, 0, 0, DataSize::from_kib(1), Direction::Write)
            .unwrap();
        let e_wr = model.dynamic_joules(ch.stats());
        // + 8192 bits x 3 pJ = 24.6 nJ.
        assert!((e_wr - e_act - 8192.0 * 3.0e-12).abs() < 1e-12);
    }
}
