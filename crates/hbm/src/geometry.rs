//! HBM stack / channel geometry.

use rip_units::{DataRate, DataSize};
use serde::{Deserialize, Serialize};

/// Physical organization of an HBM stack and its channels.
///
/// The reference geometry ([`HbmGeometry::hbm4`]) follows §3.1 Design 5 of
/// the paper: a 2,048-bit ultra-wide interface organized as 32 channels of
/// 64 bits, each pin at 10 Gb/s, for 20.48 Tb/s per stack; 64 GB capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HbmGeometry {
    /// Independent channels per stack (HBM4: 32).
    pub channels_per_stack: usize,
    /// Data width of one channel in bits (HBM4: 64).
    pub channel_width_bits: u64,
    /// Per-pin data rate in Gb/s (announced HBM4 parts: 10).
    pub gbps_per_pin: u64,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Row (page) size per bank.
    pub row_size: DataSize,
    /// Total stack capacity (HBM4: 64 GB).
    pub stack_capacity: DataSize,
    /// Burst length in column accesses — the minimum transfer granule is
    /// `channel_width_bits * burst_length` bits.
    pub burst_length: u64,
}

impl HbmGeometry {
    /// Reference HBM4 geometry (paper §3.1 Design 5).
    pub const fn hbm4() -> Self {
        HbmGeometry {
            channels_per_stack: 32,
            channel_width_bits: 64,
            gbps_per_pin: 10,
            banks_per_channel: 64,
            row_size: DataSize::from_kib(2),
            stack_capacity: DataSize::from_gib(64),
            burst_length: 8,
        }
    }

    /// Peak data rate of one channel (width × per-pin rate).
    pub fn channel_rate(&self) -> DataRate {
        DataRate::from_gbps(self.channel_width_bits * self.gbps_per_pin)
    }

    /// Peak data rate of one stack.
    pub fn stack_rate(&self) -> DataRate {
        self.channel_rate() * self.channels_per_stack as u64
    }

    /// Capacity of one channel.
    pub fn channel_capacity(&self) -> DataSize {
        self.stack_capacity / self.channels_per_stack as u64
    }

    /// Capacity of one bank.
    pub fn bank_capacity(&self) -> DataSize {
        self.channel_capacity() / self.banks_per_channel as u64
    }

    /// Number of rows per bank.
    pub fn rows_per_bank(&self) -> u64 {
        self.bank_capacity().chunks(self.row_size)
    }

    /// Minimum transfer granule: one burst.
    pub fn burst_size(&self) -> DataSize {
        DataSize::from_bits(self.channel_width_bits * self.burst_length)
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels_per_stack == 0 || self.banks_per_channel == 0 {
            return Err("channel and bank counts must be positive".into());
        }
        if self.channel_width_bits == 0 || self.gbps_per_pin == 0 || self.burst_length == 0 {
            return Err("channel width, pin rate and burst length must be positive".into());
        }
        if self.row_size.is_zero() {
            return Err("row size must be positive".into());
        }
        if !self
            .channel_capacity()
            .is_multiple_of(self.row_size * self.banks_per_channel as u64)
        {
            return Err(format!(
                "channel capacity {} is not an integer number of rows across {} banks of {}",
                self.channel_capacity(),
                self.banks_per_channel,
                self.row_size
            ));
        }
        if !self.row_size.is_multiple_of(self.burst_size()) {
            return Err(format!(
                "row size {} is not a multiple of the burst size {}",
                self.row_size,
                self.burst_size()
            ));
        }
        Ok(())
    }
}

impl Default for HbmGeometry {
    fn default() -> Self {
        Self::hbm4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm4_reference_rates_match_paper() {
        let g = HbmGeometry::hbm4();
        g.validate().expect("reference geometry valid");
        // One channel: 64 bit x 10 Gb/s = 640 Gb/s = 80 GB/s.
        assert_eq!(g.channel_rate(), DataRate::from_gbps(640));
        // One stack: 32 channels = 20.48 Tb/s.
        assert_eq!(g.stack_rate().tbps(), 20.48);
        // Four stacks = 81.92 Tb/s (checked in group tests).
    }

    #[test]
    fn capacities_divide_exactly() {
        let g = HbmGeometry::hbm4();
        assert_eq!(g.channel_capacity(), DataSize::from_gib(2));
        assert_eq!(g.bank_capacity(), DataSize::from_mib(32));
        assert_eq!(g.rows_per_bank(), 16 * 1024);
        assert_eq!(g.burst_size(), DataSize::from_bytes(64));
    }

    #[test]
    fn segment_is_unit_fraction_of_row() {
        // Paper: S = 1 KB is "a unit fraction of a row length".
        let g = HbmGeometry::hbm4();
        let s = DataSize::from_kib(1);
        assert!(g.row_size.is_multiple_of(s));
        // And an integer multiple of the burst length granule.
        assert!(s.is_multiple_of(g.burst_size()));
    }

    #[test]
    fn validation_catches_bad_geometry() {
        let mut g = HbmGeometry::hbm4();
        g.row_size = DataSize::from_bytes(1000); // not burst-aligned
        assert!(g.validate().is_err());

        let mut g = HbmGeometry::hbm4();
        g.banks_per_channel = 0;
        assert!(g.validate().is_err());

        let mut g = HbmGeometry::hbm4();
        g.burst_length = 0;
        assert!(g.validate().is_err());
    }
}
