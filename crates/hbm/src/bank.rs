//! Per-bank DRAM state machine.

use rip_units::SimTime;
use serde::{Deserialize, Serialize};

/// The row-level state of one DRAM bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BankState {
    /// No row open; the bank may be activated once `idle_at` has passed.
    Idle,
    /// A row is open and column accesses may be issued after tRCD.
    Active {
        /// The open row index.
        row: u64,
    },
}

/// One DRAM bank: open-row state plus the timestamps the channel-level
/// rules are enforced against.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Bank {
    state: BankState,
    /// When the last ACT was issued (for tRAS / tRC).
    act_issued: SimTime,
    /// When column accesses may start (ACT + tRCD).
    ready_for_cas: SimTime,
    /// When the bank becomes usable again after PRE / REFsb.
    idle_at: SimTime,
    /// End of the last column transfer touching this bank.
    last_cas_end: SimTime,
    /// When the bank was last refreshed.
    last_refresh: SimTime,
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl Bank {
    /// A fresh, idle, just-refreshed bank at t = 0.
    pub fn new() -> Self {
        Bank {
            state: BankState::Idle,
            act_issued: SimTime::ZERO,
            ready_for_cas: SimTime::ZERO,
            idle_at: SimTime::ZERO,
            last_cas_end: SimTime::ZERO,
            last_refresh: SimTime::ZERO,
        }
    }

    /// Current FSM state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// True if no row is open.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, BankState::Idle)
    }

    /// The open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        match self.state {
            BankState::Active { row } => Some(row),
            BankState::Idle => None,
        }
    }

    /// When the bank may accept a new ACT (idle only).
    pub fn idle_at(&self) -> SimTime {
        self.idle_at
    }

    /// When column accesses to the open row may start.
    pub fn ready_for_cas(&self) -> SimTime {
        self.ready_for_cas
    }

    /// When the last ACT was issued.
    pub fn act_issued(&self) -> SimTime {
        self.act_issued
    }

    /// End of the most recent column transfer.
    pub fn last_cas_end(&self) -> SimTime {
        self.last_cas_end
    }

    /// When the bank was last refreshed.
    pub fn last_refresh(&self) -> SimTime {
        self.last_refresh
    }

    // --- mutations, called by the channel after rule checks -------------

    pub(crate) fn do_activate(&mut self, now: SimTime, row: u64, ready_for_cas: SimTime) {
        self.state = BankState::Active { row };
        self.act_issued = now;
        self.ready_for_cas = ready_for_cas;
    }

    pub(crate) fn do_cas_end(&mut self, end: SimTime) {
        self.last_cas_end = end;
    }

    pub(crate) fn do_precharge(&mut self, idle_at: SimTime) {
        self.state = BankState::Idle;
        self.idle_at = idle_at;
    }

    pub(crate) fn do_refresh(&mut self, now: SimTime, idle_at: SimTime) {
        self.last_refresh = now;
        self.idle_at = idle_at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_bank_is_idle_and_ready() {
        let b = Bank::new();
        assert!(b.is_idle());
        assert_eq!(b.open_row(), None);
        assert_eq!(b.idle_at(), SimTime::ZERO);
    }

    #[test]
    fn activate_opens_row() {
        let mut b = Bank::new();
        b.do_activate(SimTime::from_ns(10), 7, SimTime::from_ns(26));
        assert_eq!(b.state(), BankState::Active { row: 7 });
        assert_eq!(b.open_row(), Some(7));
        assert_eq!(b.ready_for_cas(), SimTime::from_ns(26));
        assert_eq!(b.act_issued(), SimTime::from_ns(10));
    }

    #[test]
    fn precharge_closes_row() {
        let mut b = Bank::new();
        b.do_activate(SimTime::from_ns(10), 7, SimTime::from_ns(26));
        b.do_precharge(SimTime::from_ns(60));
        assert!(b.is_idle());
        assert_eq!(b.idle_at(), SimTime::from_ns(60));
    }

    #[test]
    fn refresh_updates_timestamps() {
        let mut b = Bank::new();
        b.do_refresh(SimTime::from_ns(100), SimTime::from_ns(220));
        assert_eq!(b.last_refresh(), SimTime::from_ns(100));
        assert_eq!(b.idle_at(), SimTime::from_ns(220));
        assert!(b.is_idle());
    }
}
