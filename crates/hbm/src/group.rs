//! A group of HBM stacks presented as `T` parallel channels.

use rip_units::{DataRate, DataSize, SimTime, TimeDelta};
use serde::{Deserialize, Serialize};

use crate::channel::Channel;
use crate::geometry::HbmGeometry;
use crate::timing::HbmTiming;

/// `B` HBM stacks ganged behind one HBM switch, exposed as a flat array
/// of `T = B × channels_per_stack` independent channels (paper §3.1
/// Design 5: B = 4 stacks, T = 128 channels, 81.92 Tb/s).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HbmGroup {
    geometry: HbmGeometry,
    timing: HbmTiming,
    stacks: usize,
    channels: Vec<Channel>,
    /// Per-channel health: a failed channel accepts no new frame
    /// segments (in-flight data drains before the channel goes dark).
    alive: Vec<bool>,
    /// Stuck-at banks as a dense bitset over the flat index
    /// `channel * banks_per_channel + bank`: a stuck bank cannot
    /// activate for new frames; its segments re-home to healthy banks
    /// of the same group. One cache line covers 512 banks, so the
    /// per-frame health probe never chases an outer pointer.
    stuck: Vec<u64>,
    /// Count of set bits in `stuck` (fast emptiness check).
    stuck_count: usize,
}

/// `(word, bit-mask)` for the flat `(channel, bank)` bitset index.
fn stuck_slot(banks_per_channel: usize, channel: usize, bank: usize) -> (usize, u64) {
    debug_assert!(bank < banks_per_channel);
    let idx = channel * banks_per_channel + bank;
    (idx / 64, 1u64 << (idx % 64))
}

impl HbmGroup {
    /// Build a group of `stacks` stacks with the given geometry/timing.
    pub fn new(stacks: usize, geometry: HbmGeometry, timing: HbmTiming) -> Self {
        assert!(stacks > 0, "group needs at least one stack");
        geometry.validate().expect("invalid HBM geometry");
        timing.validate().expect("invalid HBM timing");
        let t = stacks * geometry.channels_per_stack;
        let channels = (0..t)
            .map(|_| Channel::new(timing, geometry.channel_rate(), geometry.banks_per_channel))
            .collect();
        HbmGroup {
            geometry,
            timing,
            stacks,
            channels,
            alive: vec![true; t],
            stuck: vec![0u64; (t * geometry.banks_per_channel).div_ceil(64)],
            stuck_count: 0,
        }
    }

    /// Reference group: 4 × HBM4 stacks = 128 channels, 81.92 Tb/s.
    pub fn reference() -> Self {
        HbmGroup::new(4, HbmGeometry::hbm4(), HbmTiming::hbm4())
    }

    /// Number of stacks.
    pub fn num_stacks(&self) -> usize {
        self.stacks
    }

    /// Total number of channels `T`.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Geometry shared by all stacks.
    pub fn geometry(&self) -> &HbmGeometry {
        &self.geometry
    }

    /// Timing rules shared by all channels.
    pub fn timing(&self) -> &HbmTiming {
        &self.timing
    }

    /// Peak aggregate data rate (all channels, healthy device).
    pub fn peak_rate(&self) -> DataRate {
        self.geometry.channel_rate() * self.channels.len() as u64
    }

    /// Mark channel `i` failed: it accepts no new frame segments.
    pub fn fail_channel(&mut self, i: usize) {
        self.alive[i] = false;
    }

    /// Return channel `i` to service.
    pub fn recover_channel(&mut self, i: usize) {
        self.alive[i] = true;
    }

    /// Whether channel `i` is in service.
    pub fn channel_alive(&self, i: usize) -> bool {
        self.alive[i]
    }

    /// Number of channels currently in service.
    pub fn num_alive_channels(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Whether every channel is alive and no bank is stuck.
    pub fn fully_healthy(&self) -> bool {
        self.stuck_count == 0 && self.alive.iter().all(|&a| a)
    }

    /// Mark `bank` of channel `channel` stuck: it cannot activate for
    /// new frames.
    pub fn stick_bank(&mut self, channel: usize, bank: usize) {
        let (w, m) = stuck_slot(self.geometry.banks_per_channel, channel, bank);
        if self.stuck[w] & m == 0 {
            self.stuck[w] |= m;
            self.stuck_count += 1;
        }
    }

    /// Return `bank` of channel `channel` to service.
    pub fn unstick_bank(&mut self, channel: usize, bank: usize) {
        let (w, m) = stuck_slot(self.geometry.banks_per_channel, channel, bank);
        if self.stuck[w] & m != 0 {
            self.stuck[w] &= !m;
            self.stuck_count -= 1;
        }
    }

    /// Whether `bank` of channel `channel` is stuck.
    pub fn bank_stuck(&self, channel: usize, bank: usize) -> bool {
        let (w, m) = stuck_slot(self.geometry.banks_per_channel, channel, bank);
        self.stuck[w] & m != 0
    }

    /// All currently stuck `(channel, bank)` pairs (empty in the healthy
    /// common case, at zero cost).
    pub fn stuck_banks(&self) -> Vec<(usize, usize)> {
        if self.stuck_count == 0 {
            return Vec::new();
        }
        let per = self.geometry.banks_per_channel;
        let mut v = Vec::with_capacity(self.stuck_count);
        for (w, &word) in self.stuck.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let idx = w * 64 + bits.trailing_zeros() as usize;
                v.push((idx / per, idx % per));
                bits &= bits - 1;
            }
        }
        v
    }

    /// Peak aggregate rate of the channels currently in service — the
    /// ceiling a degraded device can sustain.
    pub fn effective_peak_rate(&self) -> DataRate {
        self.geometry.channel_rate() * self.num_alive_channels() as u64
    }

    /// Total capacity.
    pub fn capacity(&self) -> DataSize {
        self.geometry.stack_capacity * self.stacks as u64
    }

    /// Immutable access to channel `i`.
    pub fn channel(&self, i: usize) -> &Channel {
        &self.channels[i]
    }

    /// Mutable access to channel `i`.
    pub fn channel_mut(&mut self, i: usize) -> &mut Channel {
        &mut self.channels[i]
    }

    /// Iterate over all channels.
    pub fn channels(&self) -> impl Iterator<Item = &Channel> {
        self.channels.iter()
    }

    /// Toggle command recording on every channel (see
    /// [`Channel::set_record_commands`]): when on, each channel keeps an
    /// in-order ACT/RD/WR/PRE/REFsb log for replay by an external
    /// timing-conformance checker.
    pub fn set_record_commands(&mut self, on: bool) {
        for ch in &mut self.channels {
            ch.set_record_commands(on);
        }
    }

    /// Bound command recording on every channel to commands issued
    /// inside `[start, end)` (see [`Channel::set_record_window`]).
    pub fn set_record_window(&mut self, window: Option<(SimTime, SimTime)>) {
        for ch in &mut self.channels {
            ch.set_record_window(window);
        }
    }

    /// Total data moved across all channels (reads + writes).
    pub fn total_data(&self) -> DataSize {
        self.channels.iter().map(|c| c.stats().total_data()).sum()
    }

    /// Achieved aggregate rate over the window `[start, end]`.
    pub fn achieved_rate(&self, start: SimTime, end: SimTime) -> DataRate {
        let dt = end.since(start);
        if dt.is_zero() {
            return DataRate::ZERO;
        }
        let bits: u64 = self
            .channels
            .iter()
            .map(|c| c.stats().bits_read + c.stats().bits_written)
            .sum();
        let bps = bits as u128 * rip_units::PS_PER_S as u128 / dt.as_ps() as u128;
        DataRate::from_bps(u64::try_from(bps).expect("rate overflow"))
    }

    /// Fraction of peak bandwidth achieved over `[start, end]`.
    pub fn utilization(&self, start: SimTime, end: SimTime) -> f64 {
        self.achieved_rate(start, end).fraction_of(self.peak_rate())
    }

    /// Mean data-bus busy fraction across channels over `elapsed`.
    pub fn mean_bus_utilization(&self, elapsed: TimeDelta) -> f64 {
        if self.channels.is_empty() {
            return 0.0;
        }
        self.channels
            .iter()
            .map(|c| c.stats().bus_busy.utilization(elapsed))
            .sum::<f64>()
            / self.channels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_group_matches_paper() {
        let g = HbmGroup::reference();
        assert_eq!(g.num_channels(), 128);
        assert_eq!(g.num_stacks(), 4);
        // 81.92 Tb/s aggregate, 256 GB capacity.
        assert_eq!(g.peak_rate().tbps(), 81.92);
        assert_eq!(g.capacity(), DataSize::from_gib(256));
    }

    #[test]
    fn small_group_utilization_accounting() {
        use crate::channel::Direction;
        let mut g = HbmGroup::new(1, HbmGeometry::hbm4(), HbmTiming::hbm4());
        let t0 = SimTime::ZERO;
        // Write one 1 KiB segment on every channel in lockstep.
        let seg = DataSize::from_kib(1);
        let mut end = t0;
        for i in 0..g.num_channels() {
            let ch = g.channel_mut(i);
            let ready = ch.activate(t0, 0, 0).unwrap();
            end = ch.access(ready, 0, 0, seg, Direction::Write).unwrap();
        }
        assert_eq!(g.total_data(), seg * 32);
        let rate = g.achieved_rate(t0, end);
        // 32 KiB in 28.8 ns (16 tRCD + 12.8 transfer).
        let expect = 32.0 * 1024.0 * 8.0 / 28.8e-9 / 1e12; // Tb/s
        assert!((rate.tbps() - expect).abs() / expect < 0.01);
        assert!(g.utilization(t0, end) > 0.0);
    }

    #[test]
    fn zero_window_rate_is_zero() {
        let g = HbmGroup::reference();
        assert_eq!(
            g.achieved_rate(SimTime::ZERO, SimTime::ZERO),
            DataRate::ZERO
        );
    }

    #[test]
    fn channel_failure_tracks_effective_peak() {
        let mut g = HbmGroup::new(1, HbmGeometry::hbm4(), HbmTiming::hbm4());
        let t = g.num_channels();
        assert!(g.fully_healthy());
        assert_eq!(g.effective_peak_rate(), g.peak_rate());
        g.fail_channel(3);
        assert!(!g.channel_alive(3));
        assert!(!g.fully_healthy());
        assert_eq!(g.num_alive_channels(), t - 1);
        assert_eq!(
            g.effective_peak_rate(),
            g.geometry().channel_rate() * (t as u64 - 1)
        );
        g.recover_channel(3);
        assert!(g.fully_healthy());
        assert_eq!(g.effective_peak_rate(), g.peak_rate());
    }

    #[test]
    fn stuck_banks_enumerate_and_clear() {
        let mut g = HbmGroup::new(1, HbmGeometry::hbm4(), HbmTiming::hbm4());
        assert!(g.stuck_banks().is_empty());
        g.stick_bank(1, 5);
        g.stick_bank(2, 0);
        g.stick_bank(1, 5); // idempotent
        assert!(g.bank_stuck(1, 5));
        assert!(!g.fully_healthy());
        assert_eq!(g.stuck_banks(), vec![(1, 5), (2, 0)]);
        g.unstick_bank(1, 5);
        g.unstick_bank(2, 0);
        assert!(g.fully_healthy());
        assert!(g.stuck_banks().is_empty());
    }

    #[test]
    fn stuck_bitset_spans_word_boundaries() {
        // 4 stacks × 32 channels × 32 banks = 4096 flat indices; exercise
        // the first bit, a mid-word bit, bits either side of a 64-bit
        // word boundary, and the very last bank.
        let mut g = HbmGroup::reference();
        let per = g.geometry().banks_per_channel;
        let last_ch = g.num_channels() - 1;
        let picks = [(0, 0), (1, 63 % per), (2, 0), (last_ch, per - 1)];
        for &(c, b) in &picks {
            g.stick_bank(c, b);
        }
        for &(c, b) in &picks {
            assert!(g.bank_stuck(c, b), "({c},{b}) should be stuck");
        }
        assert!(!g.bank_stuck(3, 1));
        let mut expect: Vec<_> = picks.to_vec();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(g.stuck_banks(), expect);
        for &(c, b) in &picks {
            g.unstick_bank(c, b);
        }
        assert!(g.fully_healthy());
    }
}
