//! One HBM channel: banks + shared data bus + command legality rules.

use rip_sim::stats::{BusyTime, Counter};
use rip_units::{DataRate, DataSize, SimTime, TimeDelta};
use serde::{Deserialize, Serialize};

use crate::bank::{Bank, BankState};
use crate::timing::{bus_time, HbmTiming};

/// Direction of a column access on the data bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Memory read (data leaves the device).
    Read,
    /// Memory write (data enters the device).
    Write,
}

/// A command was issued in violation of a timing or state rule.
///
/// Controllers are expected to *query* the `earliest_*` methods and never
/// trigger these; the checks exist so that a buggy schedule fails loudly
/// instead of silently over-reporting bandwidth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimingError {
    /// ACT issued before the bank finished precharging or refreshing.
    BankNotIdleYet {
        /// Offending bank.
        bank: usize,
        /// When the bank becomes usable.
        idle_at: SimTime,
    },
    /// ACT issued to a bank that already has a row open.
    RowAlreadyOpen {
        /// Offending bank.
        bank: usize,
    },
    /// ACT would be the 5th activation within the tFAW window.
    FawViolation {
        /// Earliest legal ACT time.
        earliest: SimTime,
    },
    /// Column access to an idle bank or with a row mismatch.
    RowNotOpen {
        /// Offending bank.
        bank: usize,
        /// Row requested by the access.
        want_row: u64,
        /// Row actually open, if any.
        open_row: Option<u64>,
    },
    /// Column access before ACT → CAS latency (tRCD) elapsed.
    CasTooEarly {
        /// Earliest legal CAS time.
        earliest: SimTime,
    },
    /// Column access while the data bus is still busy (incl. turnaround).
    BusBusy {
        /// Earliest legal CAS time.
        earliest: SimTime,
    },
    /// PRE issued before tRAS or before the last transfer completed.
    PreTooEarly {
        /// Earliest legal PRE time.
        earliest: SimTime,
    },
    /// PRE issued to an idle bank.
    PreOnIdleBank {
        /// Offending bank.
        bank: usize,
    },
    /// REFsb issued to a non-idle or not-yet-idle bank.
    RefreshNotIdle {
        /// Offending bank.
        bank: usize,
    },
    /// Bank index out of range.
    NoSuchBank {
        /// Offending bank.
        bank: usize,
        /// Number of banks in this channel.
        banks: usize,
    },
}

impl std::fmt::Display for TimingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimingError::BankNotIdleYet { bank, idle_at } => {
                write!(f, "bank {bank} not idle until {idle_at}")
            }
            TimingError::RowAlreadyOpen { bank } => write!(f, "bank {bank} already has a row open"),
            TimingError::FawViolation { earliest } => {
                write!(f, "tFAW violation; earliest legal ACT at {earliest}")
            }
            TimingError::RowNotOpen {
                bank,
                want_row,
                open_row,
            } => write!(
                f,
                "bank {bank}: access wants row {want_row} but open row is {open_row:?}"
            ),
            TimingError::CasTooEarly { earliest } => {
                write!(f, "CAS before tRCD elapsed; earliest {earliest}")
            }
            TimingError::BusBusy { earliest } => write!(f, "data bus busy until {earliest}"),
            TimingError::PreTooEarly { earliest } => {
                write!(f, "PRE too early; earliest {earliest}")
            }
            TimingError::PreOnIdleBank { bank } => write!(f, "PRE issued to idle bank {bank}"),
            TimingError::RefreshNotIdle { bank } => {
                write!(f, "REFsb issued to non-idle bank {bank}")
            }
            TimingError::NoSuchBank { bank, banks } => {
                write!(f, "bank {bank} out of range (channel has {banks})")
            }
        }
    }
}

impl std::error::Error for TimingError {}

/// Sliding tFAW window: issue times of up to the last 4 ACTs, stored in
/// a fixed in-struct ring (no heap indirection on the command hot
/// path). ACTs are pushed in non-decreasing time order, so the oldest
/// entry is always the tFAW anchor.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct ActWindow {
    times: [SimTime; 4],
    /// Index of the oldest entry when full.
    head: u8,
    len: u8,
}

impl ActWindow {
    /// Whether 4 ACTs are already in the window.
    fn is_full(&self) -> bool {
        self.len == 4
    }

    /// The oldest ACT time (only meaningful when full).
    fn oldest(&self) -> SimTime {
        debug_assert!(self.is_full());
        self.times[self.head as usize]
    }

    /// Record an ACT, evicting the oldest entry once full.
    fn push(&mut self, t: SimTime) {
        if self.is_full() {
            self.times[self.head as usize] = t;
            self.head = (self.head + 1) % 4;
        } else {
            self.times[self.len as usize] = t;
            self.len += 1;
        }
    }
}

/// One command as issued on a channel, for replay by an independent
/// timing-conformance checker (recording is off by default; see
/// [`Channel::set_record_commands`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HbmCommand {
    /// Issue time of the command.
    pub at: SimTime,
    /// Target bank.
    pub bank: usize,
    /// Which command, with its operands.
    pub kind: HbmCommandKind,
}

/// The command kinds a [`Channel`] can issue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HbmCommandKind {
    /// ACT — open `row`.
    Activate {
        /// Row opened.
        row: u64,
    },
    /// RD column access occupying the data bus until `end`.
    Read {
        /// Transfer size.
        size: DataSize,
        /// Bus-release time.
        end: SimTime,
    },
    /// WR column access occupying the data bus until `end`.
    Write {
        /// Transfer size.
        size: DataSize,
        /// Bus-release time.
        end: SimTime,
    },
    /// PRE — close the open row.
    Precharge,
    /// REFsb — single-bank refresh.
    RefreshSb,
}

/// Command and bandwidth accounting for one channel.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChannelStats {
    /// ACT commands issued.
    pub activates: Counter,
    /// PRE commands issued.
    pub precharges: Counter,
    /// RD column accesses issued.
    pub reads: Counter,
    /// WR column accesses issued.
    pub writes: Counter,
    /// REFsb commands issued.
    pub refreshes: Counter,
    /// Column accesses that reused the row opened by a prior access
    /// (any CAS after the first one under the same ACT).
    pub row_hits: Counter,
    /// Column accesses that paid a fresh ACT (the first CAS under each
    /// ACT).
    pub row_misses: Counter,
    /// Bits read off the device.
    pub bits_read: u64,
    /// Bits written into the device.
    pub bits_written: u64,
    /// Total data-bus occupancy (transfers only, not turnaround gaps).
    pub bus_busy: BusyTime,
    /// Bus time lost to read↔write turnaround gaps.
    pub turnaround: BusyTime,
    /// Time ACTs spent stalled behind the tFAW window beyond every
    /// other constraint (bank idle-at and ACT ordering).
    pub faw_stall: BusyTime,
}

impl ChannelStats {
    /// Total data moved in either direction.
    pub fn total_data(&self) -> DataSize {
        DataSize::from_bits(self.bits_read + self.bits_written)
    }

    /// Fraction of column accesses that hit an already-open row
    /// (`None` before any access).
    pub fn row_hit_ratio(&self) -> Option<f64> {
        let total = self.row_hits.get() + self.row_misses.get();
        if total == 0 {
            None
        } else {
            Some(self.row_hits.get() as f64 / total as f64)
        }
    }
}

/// One 64-bit HBM channel with its banks, data bus and rule checker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Channel {
    timing: HbmTiming,
    rate: DataRate,
    banks: Vec<Bank>,
    /// When the data bus frees up.
    bus_free_at: SimTime,
    /// Direction of the last column access (for turnaround penalties).
    last_dir: Option<Direction>,
    /// Times of up to the last 4 ACTs (sliding tFAW window).
    recent_acts: ActWindow,
    /// Issue time of the most recent ACT (ACTs must be issued in
    /// non-decreasing time order for the tFAW window to be sound).
    last_act: SimTime,
    stats: ChannelStats,
    /// Busy time (ACT → end of PRE/REFsb) accumulated per bank.
    bank_busy: Vec<TimeDelta>,
    /// When `true`, every issued command is appended to `commands`.
    record_commands: bool,
    /// With a window set, only commands issued inside `[start, end)`
    /// are kept — the capture-time filter behind bounded trace exports.
    record_window: Option<(SimTime, SimTime)>,
    commands: Vec<HbmCommand>,
}

impl Channel {
    /// A channel with `banks` banks, transferring at `rate`.
    pub fn new(timing: HbmTiming, rate: DataRate, banks: usize) -> Self {
        timing.validate().expect("invalid HBM timing set");
        assert!(banks > 0, "channel must have at least one bank");
        Channel {
            timing,
            rate,
            banks: vec![Bank::new(); banks],
            bus_free_at: SimTime::ZERO,
            last_dir: None,
            recent_acts: ActWindow::default(),
            last_act: SimTime::ZERO,
            stats: ChannelStats::default(),
            bank_busy: vec![TimeDelta::ZERO; banks],
            record_commands: false,
            record_window: None,
            commands: Vec::new(),
        }
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// Peak transfer rate of the data bus.
    pub fn rate(&self) -> DataRate {
        self.rate
    }

    /// The timing rule set in force.
    pub fn timing(&self) -> &HbmTiming {
        &self.timing
    }

    /// Read-only view of a bank.
    pub fn bank(&self, bank: usize) -> &Bank {
        &self.banks[bank]
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// When the data bus frees up.
    pub fn bus_free_at(&self) -> SimTime {
        self.bus_free_at
    }

    /// Busy time (ACT until PRE/REFsb completion) accumulated by `bank`.
    pub fn bank_busy(&self, bank: usize) -> TimeDelta {
        self.bank_busy[bank]
    }

    /// Toggle command recording. When on, every ACT/RD/WR/PRE/REFsb is
    /// appended to an in-order log for replay by an external
    /// timing-conformance checker. Off by default (zero cost).
    pub fn set_record_commands(&mut self, on: bool) {
        self.record_commands = on;
    }

    /// The recorded command stream, in issue order.
    pub fn commands(&self) -> &[HbmCommand] {
        &self.commands
    }

    /// Drop the recorded command stream (recording state unchanged).
    pub fn clear_commands(&mut self) {
        self.commands.clear();
    }

    /// Restrict recording to commands issued inside `[start, end)`.
    /// Commands have derived completion spans (ACT covers tRCD, REFsb
    /// covers tRFCsb), so a caller wanting every command *overlapping*
    /// an interval should widen `start` by its own slack. `None` by
    /// default: record everything.
    pub fn set_record_window(&mut self, window: Option<(SimTime, SimTime)>) {
        self.record_window = window;
    }

    fn log(&mut self, at: SimTime, bank: usize, kind: HbmCommandKind) {
        if self.record_commands {
            if let Some((start, end)) = self.record_window {
                if at < start || at >= end {
                    return;
                }
            }
            self.commands.push(HbmCommand { at, bank, kind });
        }
    }

    fn check_bank(&self, bank: usize) -> Result<(), TimingError> {
        if bank >= self.banks.len() {
            Err(TimingError::NoSuchBank {
                bank,
                banks: self.banks.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Earliest time an ACT to `bank` may be issued: the bank's idle-at,
    /// the tFAW four-activation window, and the channel's ACT-order gate
    /// (ACTs are issued in non-decreasing time order so the sliding
    /// window stays sound).
    pub fn earliest_activate(&self, bank: usize) -> SimTime {
        let b = &self.banks[bank];
        let faw_gate = if self.recent_acts.is_full() {
            self.recent_acts.oldest() + self.timing.t_faw
        } else {
            SimTime::ZERO
        };
        b.idle_at().max(faw_gate).max(self.last_act)
    }

    /// Issue time of the most recent ACT on this channel.
    pub fn last_act_time(&self) -> SimTime {
        self.last_act
    }

    /// Issue an ACT: open `row` in `bank` at time `now`.
    ///
    /// Returns when the row is ready for column accesses (now + tRCD).
    pub fn activate(
        &mut self,
        now: SimTime,
        bank: usize,
        row: u64,
    ) -> Result<SimTime, TimingError> {
        self.check_bank(bank)?;
        let b = &self.banks[bank];
        if !b.is_idle() {
            return Err(TimingError::RowAlreadyOpen { bank });
        }
        if now < b.idle_at() {
            return Err(TimingError::BankNotIdleYet {
                bank,
                idle_at: b.idle_at(),
            });
        }
        if self.recent_acts.is_full() {
            let earliest = self.recent_acts.oldest() + self.timing.t_faw;
            if now < earliest {
                return Err(TimingError::FawViolation { earliest });
            }
        }
        assert!(
            now >= self.last_act,
            "ACT issued out of time order: {now} < last ACT {}",
            self.last_act
        );
        // How long the tFAW window held this ACT back beyond every
        // other constraint — the "stall" the telemetry layer reports.
        if self.recent_acts.is_full() {
            let faw_gate = self.recent_acts.oldest() + self.timing.t_faw;
            let other_gate = b.idle_at().max(self.last_act);
            if faw_gate > other_gate {
                self.stats.faw_stall.add(faw_gate - other_gate);
            }
        }
        let ready = now + self.timing.t_rcd;
        self.banks[bank].do_activate(now, row, ready);
        self.recent_acts.push(now);
        self.last_act = now;
        self.stats.activates.inc();
        self.log(now, bank, HbmCommandKind::Activate { row });
        Ok(ready)
    }

    /// Earliest time a column access of `dir` to `bank` may start: the
    /// later of tRCD-readiness and the bus gate (busy + turnaround).
    pub fn earliest_cas(&self, bank: usize, dir: Direction) -> SimTime {
        let b = &self.banks[bank];
        b.ready_for_cas().max(self.bus_gate(dir))
    }

    /// The bus-side gate for a new access of `dir` (turnaround included).
    pub fn bus_gate(&self, dir: Direction) -> SimTime {
        let gap = match (self.last_dir, dir) {
            (Some(Direction::Write), Direction::Read) => self.timing.t_wtr,
            (Some(Direction::Read), Direction::Write) => self.timing.t_rtw,
            _ => TimeDelta::ZERO,
        };
        self.bus_free_at + gap
    }

    /// Issue a column access (`dir`) of `size` to the open `row` of
    /// `bank`, starting at `now`. Returns the transfer end time.
    pub fn access(
        &mut self,
        now: SimTime,
        bank: usize,
        row: u64,
        size: DataSize,
        dir: Direction,
    ) -> Result<SimTime, TimingError> {
        self.check_bank(bank)?;
        let b = &self.banks[bank];
        match b.state() {
            BankState::Active { row: open } if open == row => {}
            BankState::Active { row: open } => {
                return Err(TimingError::RowNotOpen {
                    bank,
                    want_row: row,
                    open_row: Some(open),
                })
            }
            BankState::Idle => {
                return Err(TimingError::RowNotOpen {
                    bank,
                    want_row: row,
                    open_row: None,
                })
            }
        }
        if now < b.ready_for_cas() {
            return Err(TimingError::CasTooEarly {
                earliest: b.ready_for_cas(),
            });
        }
        let gate = self.bus_gate(dir);
        if now < gate {
            return Err(TimingError::BusBusy { earliest: gate });
        }
        // Account turnaround idle time (gap between raw bus-free and gate)
        // only when the access actually starts at/after the gate.
        let raw_free = self.bus_free_at;
        if gate > raw_free && now >= gate {
            self.stats.turnaround.add(gate - raw_free);
        }
        // Row hit/miss: the first CAS under an ACT paid the row
        // opening (miss); any further CAS reuses the open row (hit).
        if b.last_cas_end() > b.act_issued() {
            self.stats.row_hits.inc();
        } else {
            self.stats.row_misses.inc();
        }
        let dt = bus_time(self.rate, size);
        let end = now + dt;
        self.bus_free_at = end;
        self.last_dir = Some(dir);
        self.banks[bank].do_cas_end(end);
        self.stats.bus_busy.add(dt);
        match dir {
            Direction::Read => {
                self.stats.reads.inc();
                self.stats.bits_read += size.bits();
                self.log(now, bank, HbmCommandKind::Read { size, end });
            }
            Direction::Write => {
                self.stats.writes.inc();
                self.stats.bits_written += size.bits();
                self.log(now, bank, HbmCommandKind::Write { size, end });
            }
        }
        Ok(end)
    }

    /// Earliest time `bank` may be precharged: after tRAS from ACT and
    /// after its last column transfer finished.
    pub fn earliest_precharge(&self, bank: usize) -> SimTime {
        let b = &self.banks[bank];
        (b.act_issued() + self.timing.t_ras).max(b.last_cas_end())
    }

    /// Issue a PRE to `bank` at `now`. Returns when the bank is idle
    /// (now + tRP).
    pub fn precharge(&mut self, now: SimTime, bank: usize) -> Result<SimTime, TimingError> {
        self.check_bank(bank)?;
        let b = &self.banks[bank];
        if b.is_idle() {
            return Err(TimingError::PreOnIdleBank { bank });
        }
        let earliest = self.earliest_precharge(bank);
        if now < earliest {
            return Err(TimingError::PreTooEarly { earliest });
        }
        let idle_at = now + self.timing.t_rp;
        self.bank_busy[bank] += idle_at - b.act_issued();
        self.banks[bank].do_precharge(idle_at);
        self.stats.precharges.inc();
        self.log(now, bank, HbmCommandKind::Precharge);
        Ok(idle_at)
    }

    /// Issue a single-bank refresh (REFsb) to an idle `bank` at `now`.
    /// The bank is unusable until the returned time (now + tRFCsb).
    ///
    /// REFsb commands to *different* banks may overlap (they use no data
    /// bus time); the minimum command spacing between same-channel REFsb
    /// commands (tRREFD, ~8 ns) is not modeled — at PFI's refresh rate of
    /// one REFsb per ≈61 ns per channel it is never binding.
    pub fn refresh_bank(&mut self, now: SimTime, bank: usize) -> Result<SimTime, TimingError> {
        self.check_bank(bank)?;
        let b = &self.banks[bank];
        if !b.is_idle() || now < b.idle_at() {
            return Err(TimingError::RefreshNotIdle { bank });
        }
        let idle_at = now + self.timing.t_rfc_sb;
        self.bank_busy[bank] += self.timing.t_rfc_sb;
        self.banks[bank].do_refresh(now, idle_at);
        self.stats.refreshes.inc();
        self.log(now, bank, HbmCommandKind::RefreshSb);
        Ok(idle_at)
    }

    /// The bank whose last refresh is oldest, with that refresh time
    /// (refresh-scheduling helper for controllers).
    pub fn most_refresh_starved(&self) -> (usize, SimTime) {
        self.banks
            .iter()
            .enumerate()
            .min_by_key(|(_, b)| b.last_refresh())
            .map(|(i, b)| (i, b.last_refresh()))
            .expect("channel has at least one bank")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_channel() -> Channel {
        // 80 GB/s channel, 8 banks, HBM4 timing.
        Channel::new(HbmTiming::hbm4(), DataRate::from_gbps(640), 8)
    }

    fn seg() -> DataSize {
        DataSize::from_kib(1)
    }

    #[test]
    fn act_window_slides_oldest_out() {
        let mut w = ActWindow::default();
        assert!(!w.is_full());
        for i in 1..=4u64 {
            w.push(SimTime::from_ns(i));
        }
        assert!(w.is_full());
        assert_eq!(w.oldest(), SimTime::from_ns(1));
        w.push(SimTime::from_ns(9));
        assert_eq!(w.oldest(), SimTime::from_ns(2));
        for i in 10..=13u64 {
            w.push(SimTime::from_ns(i));
        }
        assert_eq!(w.oldest(), SimTime::from_ns(10));
    }

    #[test]
    fn act_cas_pre_sequence_times() {
        let mut ch = test_channel();
        let t0 = SimTime::ZERO;
        let ready = ch.activate(t0, 0, 5).unwrap();
        assert_eq!(ready, SimTime::from_ns(16)); // tRCD
        let end = ch.access(ready, 0, 5, seg(), Direction::Write).unwrap();
        assert_eq!(end, SimTime::from_ps(16_000 + 12_800)); // + 12.8 ns
        let earliest_pre = ch.earliest_precharge(0);
        assert_eq!(earliest_pre, end.max(SimTime::from_ns(16))); // tRAS gate
        let idle = ch.precharge(earliest_pre, 0).unwrap();
        assert_eq!(idle, earliest_pre + TimeDelta::from_ns(14)); // tRP
        assert_eq!(ch.stats().activates.get(), 1);
        assert_eq!(ch.stats().writes.get(), 1);
        assert_eq!(ch.stats().precharges.get(), 1);
    }

    #[test]
    fn cas_requires_open_matching_row() {
        let mut ch = test_channel();
        let err = ch
            .access(SimTime::from_ns(50), 0, 5, seg(), Direction::Read)
            .unwrap_err();
        assert!(matches!(
            err,
            TimingError::RowNotOpen { open_row: None, .. }
        ));

        ch.activate(SimTime::from_ns(50), 0, 5).unwrap();
        let err = ch
            .access(SimTime::from_ns(100), 0, 6, seg(), Direction::Read)
            .unwrap_err();
        assert!(matches!(
            err,
            TimingError::RowNotOpen {
                open_row: Some(5),
                ..
            }
        ));
    }

    #[test]
    fn cas_before_trcd_rejected() {
        let mut ch = test_channel();
        ch.activate(SimTime::ZERO, 0, 1).unwrap();
        let err = ch
            .access(SimTime::from_ns(10), 0, 1, seg(), Direction::Write)
            .unwrap_err();
        assert_eq!(
            err,
            TimingError::CasTooEarly {
                earliest: SimTime::from_ns(16)
            }
        );
    }

    #[test]
    fn bus_serializes_accesses() {
        let mut ch = test_channel();
        ch.activate(SimTime::ZERO, 0, 1).unwrap();
        ch.activate(SimTime::ZERO + TimeDelta::from_ns(1), 1, 1)
            .unwrap();
        let end0 = ch
            .access(SimTime::from_ns(16), 0, 1, seg(), Direction::Write)
            .unwrap();
        // Bank 1 is CAS-ready at 17 ns but the bus is busy until end0.
        let err = ch
            .access(SimTime::from_ns(20), 1, 1, seg(), Direction::Write)
            .unwrap_err();
        assert_eq!(err, TimingError::BusBusy { earliest: end0 });
        ch.access(end0, 1, 1, seg(), Direction::Write).unwrap();
        assert_eq!(ch.stats().writes.get(), 2);
    }

    #[test]
    fn turnaround_gap_enforced_and_accounted() {
        let mut ch = test_channel();
        ch.activate(SimTime::ZERO, 0, 1).unwrap();
        let wr_end = ch
            .access(SimTime::from_ns(16), 0, 1, seg(), Direction::Write)
            .unwrap();
        // Read after write: must wait tWTR = 1 ns beyond bus-free.
        let gate = ch.earliest_cas(0, Direction::Read);
        assert_eq!(gate, wr_end + TimeDelta::from_ns(1));
        let err = ch.access(wr_end, 0, 1, seg(), Direction::Read).unwrap_err();
        assert!(matches!(err, TimingError::BusBusy { .. }));
        ch.access(gate, 0, 1, seg(), Direction::Read).unwrap();
        assert_eq!(ch.stats().turnaround.total(), TimeDelta::from_ns(1));
        // Same-direction follow-up has no gap.
        let gate2 = ch.bus_gate(Direction::Read);
        assert_eq!(gate2, ch.bus_free_at());
    }

    #[test]
    fn tfaw_limits_activation_rate() {
        let mut ch = test_channel();
        // 4 ACTs spaced 5 ns apart: fine.
        for i in 0..4 {
            ch.activate(SimTime::from_ns(i * 5), i as usize, 0).unwrap();
        }
        // 5th ACT at 20 ns: would be 5 ACTs in [0, 40 ns) -> violation.
        let err = ch.activate(SimTime::from_ns(20), 4, 0).unwrap_err();
        assert_eq!(
            err,
            TimingError::FawViolation {
                earliest: SimTime::from_ns(40)
            }
        );
        assert_eq!(ch.earliest_activate(4), SimTime::from_ns(40));
        ch.activate(SimTime::from_ns(40), 4, 0).unwrap();
        assert_eq!(ch.stats().activates.get(), 5);
    }

    #[test]
    fn pfi_stagger_satisfies_tfaw() {
        // The PFI schedule issues ACTs every 12.8 ns (segment time).
        // Any 5 consecutive ACTs then span 51.2 ns > tFAW = 40 ns.
        let mut ch = test_channel();
        let seg_ps = 12_800u64;
        for i in 0..8u64 {
            let bank = (i % 8) as usize;
            ch.activate(SimTime::from_ps(i * seg_ps), bank, 0).unwrap();
            // Close it promptly so the bank can cycle.
            let pre_t = ch.earliest_precharge(bank);
            ch.precharge(pre_t, bank).unwrap();
        }
        assert_eq!(ch.stats().activates.get(), 8);
    }

    #[test]
    fn act_on_non_idle_bank_rejected() {
        let mut ch = test_channel();
        ch.activate(SimTime::ZERO, 0, 1).unwrap();
        let err = ch.activate(SimTime::from_ns(100), 0, 2).unwrap_err();
        assert_eq!(err, TimingError::RowAlreadyOpen { bank: 0 });
        // And re-ACT before tRP completes is rejected.
        let pre_t = ch.earliest_precharge(0);
        let idle = ch.precharge(pre_t, 0).unwrap();
        let err = ch.activate(idle - TimeDelta::from_ns(1), 0, 2).unwrap_err();
        assert!(matches!(err, TimingError::BankNotIdleYet { .. }));
        ch.activate(idle, 0, 2).unwrap();
    }

    #[test]
    fn pre_before_tras_rejected() {
        let mut ch = test_channel();
        ch.activate(SimTime::ZERO, 0, 1).unwrap();
        let err = ch.precharge(SimTime::from_ns(10), 0).unwrap_err();
        assert_eq!(
            err,
            TimingError::PreTooEarly {
                earliest: SimTime::from_ns(16)
            }
        );
        let err = ch.precharge(SimTime::from_ns(50), 1).unwrap_err();
        assert_eq!(err, TimingError::PreOnIdleBank { bank: 1 });
    }

    #[test]
    fn refresh_needs_idle_bank() {
        let mut ch = test_channel();
        ch.activate(SimTime::ZERO, 0, 1).unwrap();
        let err = ch.refresh_bank(SimTime::from_ns(100), 0).unwrap_err();
        assert_eq!(err, TimingError::RefreshNotIdle { bank: 0 });
        let done = ch.refresh_bank(SimTime::from_ns(100), 1).unwrap();
        assert_eq!(done, SimTime::from_ns(220)); // +tRFCsb = 120 ns
                                                 // Bank unusable while refreshing.
        let err = ch.activate(SimTime::from_ns(150), 1, 0).unwrap_err();
        assert!(matches!(err, TimingError::BankNotIdleYet { .. }));
        assert_eq!(ch.stats().refreshes.get(), 1);
    }

    #[test]
    fn most_refresh_starved_tracks_oldest() {
        let mut ch = test_channel();
        assert_eq!(ch.most_refresh_starved().0, 0);
        ch.refresh_bank(SimTime::from_ns(10), 0).unwrap();
        ch.refresh_bank(SimTime::from_ns(10), 2).unwrap();
        // Bank 1 (never refreshed) is now the most starved.
        assert_eq!(ch.most_refresh_starved(), (1, SimTime::ZERO));
    }

    #[test]
    fn out_of_range_bank_is_an_error() {
        let mut ch = test_channel();
        assert!(matches!(
            ch.activate(SimTime::ZERO, 99, 0),
            Err(TimingError::NoSuchBank { bank: 99, banks: 8 })
        ));
    }

    #[test]
    fn stats_accumulate_data_volumes() {
        let mut ch = test_channel();
        ch.activate(SimTime::ZERO, 0, 1).unwrap();
        let e1 = ch
            .access(SimTime::from_ns(16), 0, 1, seg(), Direction::Write)
            .unwrap();
        let gate = ch.earliest_cas(0, Direction::Read);
        ch.access(gate, 0, 1, seg(), Direction::Read).unwrap();
        assert_eq!(ch.stats().bits_written, seg().bits());
        assert_eq!(ch.stats().bits_read, seg().bits());
        assert_eq!(ch.stats().total_data(), DataSize::from_kib(2));
        assert_eq!(ch.stats().bus_busy.total(), TimeDelta::from_ps(2 * 12_800));
        assert!(e1 < ch.bus_free_at());
    }
}
