//! Typed configuration and degraded-mode errors for the PFI engine.

use rip_units::{DataSize, TimeDelta};

/// Why a [`crate::PfiConfig`] cannot drive a given HBM group — either a
/// static constraint of §3.2 (segment/γ geometry, timing windows), or a
/// degraded-mode infeasibility (so many channels/banks failed that the
/// surviving rows cannot absorb the displaced segments).
#[derive(Debug, Clone, PartialEq)]
pub enum PfiConfigError {
    /// γ or N was zero.
    ZeroParameter,
    /// Bank count is not divisible into whole γ-groups.
    GammaBanks {
        /// Banks per channel `L`.
        banks: usize,
        /// γ — banks per interleaving group.
        gamma: usize,
    },
    /// Segment is not a multiple of the burst granule.
    SegmentBurst {
        /// Configured segment size `S`.
        segment: DataSize,
        /// Device burst granule.
        burst: DataSize,
    },
    /// Segment is not a unit fraction of the row length.
    SegmentRow {
        /// Configured segment size `S`.
        segment: DataSize,
        /// Device row size.
        row: DataSize,
    },
    /// γ segment-times do not cover tRC: seamless staggered interleaving
    /// would stall on the first bank of each group.
    GammaTrc {
        /// γ — banks per interleaving group.
        gamma: usize,
        /// Span of one group (γ segment times).
        span: TimeDelta,
        /// Device tRC.
        t_rc: TimeDelta,
    },
    /// The one-ACT-per-segment stagger violates the four-activation
    /// window.
    SegmentFaw {
        /// One segment transfer time.
        seg_time: TimeDelta,
        /// Device tFAW.
        t_faw: TimeDelta,
    },
    /// More outputs than the per-bank row budget supports.
    OutputBudget,
    /// Stripe width `T'` does not evenly divide the channel count.
    Stripe {
        /// Configured stripe width.
        stripe: usize,
        /// Channels in the group.
        channels: usize,
    },
    /// The per-output region allocator rejected its parameters.
    Region(String),
    /// Degraded mode: every channel of a stripe subset has failed, so no
    /// frame for that subset's outputs can be placed at all.
    SubsetDead {
        /// Index of the fully-failed subset.
        subset: usize,
    },
    /// Degraded mode: the displaced segments of failed channels/banks
    /// exceed the spare column space of the surviving open rows.
    RedistributionOverflow {
        /// Stripe subset affected.
        subset: usize,
        /// Segments that must be re-homed per frame.
        displaced: usize,
        /// Spare segment slots available per frame.
        spare: usize,
    },
    /// Degraded mode: all γ banks of an interleaving group are stuck on
    /// a live channel, so frames mapping to that group cannot be placed.
    GroupStuck {
        /// Channel with the fully-stuck group.
        channel: usize,
        /// Interleaving group index.
        group: usize,
    },
}

impl std::fmt::Display for PfiConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PfiConfigError::ZeroParameter => {
                write!(f, "gamma and num_outputs must be positive")
            }
            PfiConfigError::GammaBanks { banks, gamma } => {
                write!(
                    f,
                    "banks per channel ({banks}) not divisible by gamma ({gamma})"
                )
            }
            PfiConfigError::SegmentBurst { segment, burst } => {
                write!(
                    f,
                    "segment {segment} is not a multiple of the burst granule {burst}"
                )
            }
            PfiConfigError::SegmentRow { segment, row } => {
                write!(
                    f,
                    "segment {segment} is not a unit fraction of the row size {row}"
                )
            }
            PfiConfigError::GammaTrc { gamma, span, t_rc } => write!(
                f,
                "gamma ({gamma}) too small: group span {span} < tRC {t_rc} breaks seamless \
                 staggered interleaving"
            ),
            PfiConfigError::SegmentFaw { seg_time, t_faw } => write!(
                f,
                "ACT stagger {seg_time} x4 violates tFAW {t_faw}: segment too small for \
                 the four-activation window"
            ),
            PfiConfigError::OutputBudget => {
                write!(f, "too many outputs for the per-bank row budget")
            }
            PfiConfigError::Stripe { stripe, channels } => {
                write!(
                    f,
                    "stripe width {stripe} must evenly divide the {channels} channels"
                )
            }
            PfiConfigError::Region(msg) => write!(f, "region allocator: {msg}"),
            PfiConfigError::SubsetDead { subset } => {
                write!(f, "every channel of stripe subset {subset} has failed")
            }
            PfiConfigError::RedistributionOverflow {
                subset,
                displaced,
                spare,
            } => write!(
                f,
                "subset {subset}: {displaced} displaced segments per frame exceed the {spare} \
                 spare row slots of the surviving channels"
            ),
            PfiConfigError::GroupStuck { channel, group } => {
                write!(f, "channel {channel}: all banks of group {group} are stuck")
            }
        }
    }
}

impl std::error::Error for PfiConfigError {}
