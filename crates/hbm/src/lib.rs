//! HBM4 device and memory-controller timing simulator.
//!
//! This crate is the substrate that stands in for real HBM4 silicon in the
//! petabit router-in-a-package reproduction. It models, per channel:
//!
//! * a **bank state machine** per bank (idle / active), with row-granular
//!   open-page state and per-command readiness timestamps;
//! * a shared **data bus** with exact transfer times (64-bit channel at
//!   10 Gb/s per pin = 80 GB/s) and read↔write turnaround penalties;
//! * **JEDEC-style timing rules**: tRCD, tRP, tRAS, tRC, the tFAW
//!   four-activation window, and single-bank refresh (REFsb);
//! * command/bandwidth accounting for utilization measurements.
//!
//! On top of the device sit two controllers, the two protagonists of the
//! paper's §3.1 Challenge 6:
//!
//! * [`controller::PfiController`] — the paper's Parallel Frame
//!   Interleaving access engine: frames striped as segments across all
//!   `T` channels, written/read with cyclical **staggered bank
//!   interleaving** over groups of `γ` consecutive banks, reaching
//!   best-case (peak) data rates;
//! * [`controller::RandomAccessController`] — the literature baseline
//!   that assumes worst-case random access (≈30 ns of activate+precharge
//!   per access), with or without use of the parallel channels.
//!
//! The headline numbers of §3.1 (2.6× / 39× / 1,250× throughput
//! reduction) and §4 (≈2 % write/read transition overhead, hidden
//! refresh) are *measured* on this simulator, and cross-checked against
//! the closed forms in `rip-analysis`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod channel;
pub mod controller;
mod energy;
mod error;
mod geometry;
mod group;
mod region;
mod timing;

pub use bank::{Bank, BankState};
pub use channel::{Channel, ChannelStats, Direction, HbmCommand, HbmCommandKind, TimingError};
pub use controller::{
    AccessPattern, AccessReport, FrameOp, OpenPageController, PfiConfig, PfiController,
    RandomAccessController, SustainedReport,
};
pub use energy::HbmEnergyModel;
pub use error::PfiConfigError;
pub use geometry::HbmGeometry;
pub use group::HbmGroup;
pub use region::{RegionAllocator, RegionMode};
pub use timing::HbmTiming;
