//! Memory controllers: the paper's PFI engine and the random-access
//! baseline it is compared against (§3.1 Challenge 6 / Design 6).

use std::collections::BTreeMap;

use rand::Rng;
use rip_sim::rng::rng_for;
use rip_units::{DataRate, DataSize, SimTime, TimeDelta};
use serde::{DeError, Deserialize, Serialize, Value};

use crate::channel::Direction;
use crate::error::PfiConfigError;
use crate::group::HbmGroup;
use crate::region::{RegionAllocator, RegionMode};

/// Write-time placement of one degraded frame: the alive mask of its
/// stripe subset plus the stuck `(channel, bank)` pairs at write time.
type DegradedPlacement = (u128, Vec<(usize, usize)>);

/// Configuration of the Parallel Frame Interleaving engine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PfiConfig {
    /// γ — banks per interleaving group (paper: 4).
    pub gamma: usize,
    /// S — segment size written per (channel, bank) per frame (paper: 1 KiB).
    pub segment: DataSize,
    /// N — number of outputs sharing the memory (per-output FIFO regions).
    pub num_outputs: usize,
    /// T' — stripe a frame over only this many channels instead of all
    /// `T` (§5 datacenter variant: smaller frames `K' = γ·T'·S`, with
    /// different outputs mapped to disjoint channel subsets that run
    /// concurrently). `None` = full stripe, the paper's WAN design.
    pub stripe_channels: Option<usize>,
    /// How HBM rows are divided among the per-output FIFO regions
    /// (§3.2: static, or dynamic with large per-output pages).
    pub region_mode: RegionMode,
}

impl PfiConfig {
    /// The paper's reference PFI parameters: γ = 4, S = 1 KiB, N = 16.
    pub const fn reference() -> Self {
        PfiConfig {
            gamma: 4,
            segment: DataSize::from_kib(1),
            num_outputs: 16,
            stripe_channels: None,
            region_mode: RegionMode::Static,
        }
    }

    /// The stripe width actually used on a group with `t` channels.
    pub fn stripe(&self, t: usize) -> usize {
        self.stripe_channels.unwrap_or(t)
    }

    /// Frame size for a group with `t` channels: `K = γ · T' · S`.
    pub fn frame_size(&self, t: usize) -> DataSize {
        self.segment * (self.gamma as u64 * self.stripe(t) as u64)
    }

    /// Validate against a device group, checking every constraint §3.2
    /// places on S and γ:
    ///
    /// * S is an integer multiple of the burst granule and a unit
    ///   fraction of the row length;
    /// * the bank count is divisible into whole γ-groups;
    /// * γ segment-times cover tRC, so the precharge of the first bank of
    ///   one group completes before that bank's next activation could be
    ///   needed by the following group (seamless group chaining);
    /// * the ACT stagger obeys the four-activation window: at most 4
    ///   activations per tFAW.
    pub fn validate(&self, group: &HbmGroup) -> Result<(), PfiConfigError> {
        let g = group.geometry();
        if self.gamma == 0 || self.num_outputs == 0 {
            return Err(PfiConfigError::ZeroParameter);
        }
        if !g.banks_per_channel.is_multiple_of(self.gamma) {
            return Err(PfiConfigError::GammaBanks {
                banks: g.banks_per_channel,
                gamma: self.gamma,
            });
        }
        if !self.segment.is_multiple_of(g.burst_size()) {
            return Err(PfiConfigError::SegmentBurst {
                segment: self.segment,
                burst: g.burst_size(),
            });
        }
        if !g.row_size.is_multiple_of(self.segment) {
            return Err(PfiConfigError::SegmentRow {
                segment: self.segment,
                row: g.row_size,
            });
        }
        let seg_time = g.channel_rate().transfer_time(self.segment);
        let t = group.timing();
        // Seamless group chaining: a bank finishes ACT..PRE within the
        // γ segment slots of its group.
        let group_span = seg_time * self.gamma as u64;
        if group_span < t.t_rc() {
            return Err(PfiConfigError::GammaTrc {
                gamma: self.gamma,
                span: group_span,
                t_rc: t.t_rc(),
            });
        }
        // Four-activation window: ACTs are staggered one per segment
        // time, so 5 consecutive ACTs span 4 segment times.
        if seg_time * 4 < t.t_faw {
            return Err(PfiConfigError::SegmentFaw {
                seg_time,
                t_faw: t.t_faw,
            });
        }
        let banks_per_output = g.banks_per_channel / self.gamma;
        if banks_per_output == 0 || g.rows_per_bank() < self.num_outputs as u64 {
            return Err(PfiConfigError::OutputBudget);
        }
        if let Some(stripe) = self.stripe_channels {
            if stripe == 0 || !group.num_channels().is_multiple_of(stripe) {
                return Err(PfiConfigError::Stripe {
                    stripe,
                    channels: group.num_channels(),
                });
            }
        }
        // The region allocator has its own constraints (page divisibility,
        // enough rows); build one to validate them.
        RegionAllocator::new(
            self.region_mode,
            g.rows_per_bank(),
            g.row_size.chunks(self.segment),
            self.num_outputs,
        )
        .map_err(PfiConfigError::Region)?;
        Ok(())
    }
}

/// One completed frame transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameOp {
    /// The output whose FIFO region was accessed.
    pub output: usize,
    /// Per-output frame sequence number `n`.
    pub frame_index: u64,
    /// Bank interleaving group `h = n mod (L/γ)`.
    pub group: usize,
    /// When the first column access started (max across channels).
    pub first_cas: SimTime,
    /// When the last column access ended (max across channels).
    pub end: SimTime,
}

/// Report of a sustained PFI run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SustainedReport {
    /// Frames transferred (writes + reads).
    pub frames: u64,
    /// Total data moved.
    pub data: DataSize,
    /// Measurement window (first CAS to last CAS end).
    pub elapsed: TimeDelta,
    /// Achieved aggregate data rate.
    pub achieved: DataRate,
    /// Device peak rate.
    pub peak: DataRate,
    /// `achieved / peak`.
    pub utilization: f64,
    /// Peak rate of the channels in service at the end of the run
    /// (equals `peak` on a healthy device).
    pub effective_peak: DataRate,
    /// `achieved / effective_peak` — how close the survivors run to
    /// their own ceiling under degradation.
    pub effective_utilization: f64,
    /// Fraction of the window lost to read↔write turnaround gaps
    /// (the paper's ≈2 % "frame interleaving cycle" transitions).
    pub turnaround_fraction: f64,
    /// REFsb commands issued during the run.
    pub refreshes: u64,
    /// Worst observed gap between consecutive refreshes of any bank.
    pub max_refresh_gap: TimeDelta,
}

/// The Parallel Frame Interleaving controller (§3.2 steps ➂ and ➃).
///
/// ```
/// use rip_hbm::{HbmGroup, PfiConfig, PfiController};
/// let mut group = HbmGroup::reference(); // 4 HBM4 stacks, 128 channels
/// let mut pfi = PfiController::new(PfiConfig::reference(), &group).unwrap();
/// let report = pfi.run_sustained(&mut group, 50);
/// assert!(report.utilization > 0.9); // peak-rate operation
/// ```
///
/// Writes the `n`-th frame for output `o` into bank interleaving group
/// `h = n mod (L/γ)`, as γ staggered segments per channel across all `T`
/// channels in lockstep; reads cycle through outputs in the same order,
/// so frame order per output is preserved with **no bookkeeping** beyond
/// two counters per output — exactly the paper's claim.
#[derive(Debug, Clone)]
pub struct PfiController {
    cfg: PfiConfig,
    /// Next frame sequence number to write, per output.
    next_write: Vec<u64>,
    /// Next frame sequence number to read, per output.
    next_read: Vec<u64>,
    /// Monotonicity guard for command issue order.
    last_start: SimTime,
    /// Refresh bookkeeping: worst inter-refresh gap seen per bank is
    /// tracked lazily from channel state at report time.
    refresh_enabled: bool,
    /// Refresh-storm fault: until this instant every pump refreshes the
    /// maximum number of banks with no staleness threshold and no group
    /// exclusion, so REFsb collides with imminent activations.
    storm_until: SimTime,
    /// Write-time placement of frames written while the device was
    /// degraded, per output: frame index → (alive mask of the stripe
    /// subset, stuck `(channel, bank)` pairs). Reads replay this
    /// placement; the maps stay empty on a healthy device, preserving
    /// the paper's counters-only FIFO state in the common case.
    degraded: Vec<BTreeMap<u64, DegradedPlacement>>,
    /// Row mapping / page churn for the per-output FIFO regions.
    region: RegionAllocator,
}

impl PfiController {
    /// Build a controller for `group`, validating the configuration.
    pub fn new(cfg: PfiConfig, group: &HbmGroup) -> Result<Self, PfiConfigError> {
        cfg.validate(group)?;
        let g = group.geometry();
        let region = RegionAllocator::new(
            cfg.region_mode,
            g.rows_per_bank(),
            g.row_size.chunks(cfg.segment),
            cfg.num_outputs,
        )
        .map_err(PfiConfigError::Region)?;
        Ok(PfiController {
            cfg,
            next_write: vec![0; cfg.num_outputs],
            next_read: vec![0; cfg.num_outputs],
            last_start: SimTime::ZERO,
            refresh_enabled: true,
            storm_until: SimTime::ZERO,
            degraded: vec![BTreeMap::new(); cfg.num_outputs],
            region,
        })
    }

    /// Disable the opportunistic refresh engine (for ablation benches).
    pub fn set_refresh_enabled(&mut self, enabled: bool) {
        self.refresh_enabled = enabled;
    }

    /// Run the refresh engine in storm mode until `until` (sim time):
    /// every pump fires indiscriminately — no staleness threshold, no
    /// group exclusion — modeling a runaway refresh controller whose
    /// tRFCsb windows collide with imminent activations.
    pub fn set_refresh_storm(&mut self, until: SimTime) {
        self.storm_until = until;
    }

    /// Whether the refresh storm is still in force at `now`.
    pub fn refresh_storm_active(&self, now: SimTime) -> bool {
        now < self.storm_until
    }

    /// The configuration in force.
    pub fn config(&self) -> &PfiConfig {
        &self.cfg
    }

    /// Number of bank interleaving groups `L/γ`.
    pub fn num_groups(&self, group: &HbmGroup) -> usize {
        group.geometry().banks_per_channel / self.cfg.gamma
    }

    /// Frames currently buffered in the HBM for `output`
    /// (write counter − read counter: the "counters only" FIFO state).
    pub fn frames_buffered(&self, output: usize) -> u64 {
        self.next_write[output] - self.next_read[output]
    }

    /// The latest `start` time passed to a frame op — subsequent ops
    /// must use a start no earlier than this.
    pub fn last_issue_time(&self) -> SimTime {
        self.last_start
    }

    /// Whether a new frame for `output` can be placed in the HBM —
    /// static: the output's region has a free slot; dynamic: the
    /// output's tail page has space or a free page exists. The switch
    /// must check this before calling [`PfiController::write_frame`].
    pub fn can_accept_frame(&self, group: &HbmGroup, output: usize) -> bool {
        let num_groups = self.num_groups(group) as u64;
        let write_slot = self.next_write[output] / num_groups;
        match self.cfg.region_mode {
            RegionMode::Static => {
                // Occupied row-slot span must stay inside the region.
                let read_slot = self.next_read[output] / num_groups;
                write_slot - read_slot < self.region.static_slots_per_output()
            }
            RegionMode::DynamicPages { .. } => self.region.can_accept(output, write_slot, 0),
        }
    }

    /// The page-pointer SRAM the current region mode needs (§3.2:
    /// counters only for static; "a small extra amount of SRAM" for
    /// dynamic pages).
    pub fn pointer_sram(&self) -> rip_units::DataSize {
        self.region.pointer_sram()
    }

    /// Region allocator view (pages held/free, for experiments).
    pub fn region(&self) -> &RegionAllocator {
        &self.region
    }

    /// Alive mask covering a full stripe subset (bit `i` = channel
    /// `base + i` in service; channels ≥ 128 are implicitly alive).
    fn full_mask(stripe: usize) -> u128 {
        if stripe >= 128 {
            u128::MAX
        } else {
            (1u128 << stripe) - 1
        }
    }

    /// `(first channel, width)` of the stripe subset serving `output`.
    fn subset_base(&self, group: &HbmGroup, output: usize) -> (usize, usize) {
        let t = group.num_channels();
        let stripe = self.cfg.stripe(t);
        let subsets = t / stripe;
        ((output % subsets) * stripe, stripe)
    }

    /// Snapshot the health of `output`'s stripe subset: the alive mask
    /// plus the stuck `(channel, bank)` pairs on its live channels.
    fn subset_health(&self, group: &HbmGroup, output: usize) -> (u128, Vec<(usize, usize)>) {
        let (base, stripe) = self.subset_base(group, output);
        if group.fully_healthy() {
            return (Self::full_mask(stripe), Vec::new());
        }
        assert!(
            stripe <= 128,
            "degraded mode supports stripes up to 128 channels"
        );
        let mut mask = 0u128;
        let mut stuck = Vec::new();
        for idx in 0..stripe {
            let ci = base + idx;
            if group.channel_alive(ci) {
                mask |= 1u128 << idx;
                for bank in 0..group.geometry().banks_per_channel {
                    if group.bank_stuck(ci, bank) {
                        stuck.push((ci, bank));
                    }
                }
            }
        }
        (mask, stuck)
    }

    /// Whether the controller can still place every new frame on the
    /// current (possibly degraded) device. Each stripe subset must keep
    /// at least one live channel; no live channel may have a fully-stuck
    /// interleaving group; and the segments displaced from failed
    /// channels/banks must fit in the spare column slots of the
    /// surviving open rows (one base segment per episode leaves
    /// `segs_per_row − 1` spare slots in its row).
    pub fn check_degraded(&self, group: &HbmGroup) -> Result<(), PfiConfigError> {
        if group.fully_healthy() {
            return Ok(());
        }
        let g = group.geometry();
        let t = group.num_channels();
        let stripe = self.cfg.stripe(t);
        let subsets = t / stripe;
        let gamma = self.cfg.gamma;
        let num_groups = g.banks_per_channel / gamma;
        let segs_per_row = g.row_size.chunks(self.cfg.segment) as usize;
        for s in 0..subsets {
            let base = s * stripe;
            let alive: Vec<usize> = (base..base + stripe)
                .filter(|&ci| group.channel_alive(ci))
                .collect();
            if alive.is_empty() {
                return Err(PfiConfigError::SubsetDead { subset: s });
            }
            for &ci in &alive {
                for h in 0..num_groups {
                    if (0..gamma).all(|j| group.bank_stuck(ci, h * gamma + j)) {
                        return Err(PfiConfigError::GroupStuck {
                            channel: ci,
                            group: h,
                        });
                    }
                }
            }
            let dead = stripe - alive.len();
            for h in 0..num_groups {
                let stuck_live: usize = alive
                    .iter()
                    .map(|&ci| {
                        (0..gamma)
                            .filter(|&j| group.bank_stuck(ci, h * gamma + j))
                            .count()
                    })
                    .sum();
                let displaced = dead * gamma + stuck_live;
                let episodes = alive.len() * gamma - stuck_live;
                let spare = episodes * (segs_per_row - 1);
                if displaced > spare {
                    return Err(PfiConfigError::RedistributionOverflow {
                        subset: s,
                        displaced,
                        spare,
                    });
                }
            }
        }
        Ok(())
    }

    /// Transfer one frame for `output` in direction `dir`, starting no
    /// earlier than `start`. Returns the completed op.
    #[allow(clippy::too_many_arguments)]
    fn frame_op(
        &mut self,
        group: &mut HbmGroup,
        start: SimTime,
        output: usize,
        n: u64,
        row: u64,
        dir: Direction,
        mask: u128,
        stuck: &[(usize, usize)],
    ) -> FrameOp {
        assert!(
            start >= self.last_start,
            "frame ops must be issued with non-decreasing start times"
        );
        self.last_start = start;
        let num_groups = self.num_groups(group);
        let h = (n % num_groups as u64) as usize;
        let seg = self.cfg.segment;
        let mut first_cas: Option<SimTime> = None;
        let mut end = SimTime::ZERO;
        let refresh_due = group.timing().t_refi_sb * 3 / 4;
        let refresh_enabled = self.refresh_enabled;
        let storm_until = self.storm_until;
        let gamma = self.cfg.gamma;
        // Channel subset for this frame: full stripe by default; with a
        // narrower stripe, output o uses subset o mod (T/T') so subsets
        // serve disjoint output sets concurrently.
        let t_all = group.num_channels();
        let stripe = self.cfg.stripe(t_all);
        let subsets = t_all / stripe;
        let first_channel = (output % subsets) * stripe;
        // Episode plan: one ACT→CAS→PRE episode per live (channel, bank)
        // of group h. Segments displaced from dead channels and stuck
        // banks ride as *extra CAS bursts on already-open rows* of the
        // surviving episodes — no extra ACT, so the staggered schedule
        // stays legal — rotated by frame index so no single bank absorbs
        // the displaced load on every frame.
        let mut episodes: Vec<(usize, usize, usize)> = Vec::with_capacity(stripe * gamma);
        let mut displaced = 0usize;
        for idx in 0..stripe {
            let ci = first_channel + idx;
            let ch_alive = idx >= 128 || mask & (1u128 << idx) != 0;
            for j in 0..gamma {
                let bank = h * gamma + j;
                if ch_alive && !stuck.contains(&(ci, bank)) {
                    episodes.push((ci, bank, 0));
                } else {
                    displaced += 1;
                }
            }
        }
        assert!(
            !episodes.is_empty(),
            "no live (channel, bank) for output {output} group {h}: \
             callers must gate on check_degraded"
        );
        for e in 0..displaced {
            let k = (n as usize).wrapping_add(e) % episodes.len();
            episodes[k].2 += 1;
        }
        let mut i = 0usize;
        for ci in first_channel..first_channel + stripe {
            let ch = group.channel_mut(ci);
            let mut prev_cas_end: Option<SimTime> = None;
            let mut channel_end = SimTime::ZERO;
            let mut first_on_channel = true;
            let mut any = false;
            while i < episodes.len() && episodes[i].0 == ci {
                let (_, bank, extra) = episodes[i];
                i += 1;
                any = true;
                // Issue the ACT as early as legal (pipelined behind the
                // previous bank's transfer), but not before the frame
                // became available.
                let act_t = ch.earliest_activate(bank).max(start);
                let ready = ch
                    .activate(act_t, bank, row)
                    .unwrap_or_else(|e| panic!("PFI ACT schedule bug: {e}"));
                let cas_t = ready
                    .max(ch.earliest_cas(bank, dir))
                    .max(prev_cas_end.unwrap_or(SimTime::ZERO));
                let mut cas_end = ch
                    .access(cas_t, bank, row, seg, dir)
                    .unwrap_or_else(|e| panic!("PFI CAS schedule bug: {e}"));
                // Displaced segments: extra bursts on the row this
                // episode already opened.
                for _ in 0..extra {
                    let t2 = cas_end.max(ch.earliest_cas(bank, dir));
                    cas_end = ch
                        .access(t2, bank, row, seg, dir)
                        .unwrap_or_else(|e| panic!("PFI extra-CAS schedule bug: {e}"));
                }
                if first_on_channel {
                    first_cas = Some(first_cas.map_or(cas_t, |f| f.max(cas_t)));
                    first_on_channel = false;
                }
                prev_cas_end = Some(cas_end);
                channel_end = channel_end.max(cas_end);
                // Close the bank as soon as legal; it is next needed a
                // whole group cycle away.
                let pre_t = ch.earliest_precharge(bank);
                ch.precharge(pre_t, bank)
                    .unwrap_or_else(|e| panic!("PFI PRE schedule bug: {e}"));
            }
            if !any {
                continue; // dead channel: no episodes, no refresh pump
            }
            end = end.max(channel_end);
            // Hidden refresh (§4 "frame interleaving cycle"): while group
            // `h` is on the bus, banks of *distant* groups are guaranteed
            // idle for many group slots — refresh the most starved ones
            // there. Excluding the group just serviced and the next one
            // keeps REFsb (tRFCsb = 120 ns) from colliding with imminent
            // activations, which is what makes refresh invisible. A
            // refresh storm removes both safeguards.
            if refresh_enabled {
                if channel_end < storm_until {
                    Self::pump_refresh(
                        ch,
                        channel_end,
                        h,
                        gamma,
                        num_groups,
                        TimeDelta::ZERO,
                        true,
                    );
                } else {
                    Self::pump_refresh(ch, channel_end, h, gamma, num_groups, refresh_due, false);
                }
            }
        }
        FrameOp {
            output,
            frame_index: n,
            group: h,
            first_cas: first_cas.unwrap_or(SimTime::ZERO),
            end,
        }
    }

    /// Refresh up to 4 due banks on `ch` at `now`, avoiding groups `h`
    /// and `h+1` (imminently reusable) when more than 2 groups exist.
    /// `ignore_exclusion` (storm mode) drops the group safeguard.
    fn pump_refresh(
        ch: &mut crate::channel::Channel,
        now: SimTime,
        h: usize,
        gamma: usize,
        num_groups: usize,
        due: TimeDelta,
        ignore_exclusion: bool,
    ) {
        let excluded = |bank: usize| {
            if ignore_exclusion || num_groups <= 2 {
                return false;
            }
            let g = bank / gamma;
            g == h || g == (h + 1) % num_groups
        };
        for _ in 0..4 {
            // Most refresh-starved eligible, currently idle bank.
            let candidate = (0..ch.num_banks())
                .filter(|&b| !excluded(b))
                .filter(|&b| ch.bank(b).is_idle() && ch.bank(b).idle_at() <= now)
                .min_by_key(|&b| ch.bank(b).last_refresh());
            let Some(bank) = candidate else { break };
            if now.saturating_since(ch.bank(bank).last_refresh()) < due {
                break; // nothing due yet
            }
            ch.refresh_bank(now, bank)
                .unwrap_or_else(|e| panic!("PFI REFsb schedule bug: {e}"));
        }
    }

    /// Write the next frame for `output` (available in tail SRAM at
    /// `start`). Returns the completed op.
    ///
    /// # Panics
    /// Panics if the output's region cannot accept a frame — callers
    /// check [`PfiController::can_accept_frame`] first (and drop the
    /// frame otherwise, the loss path of an oversubscribed output).
    pub fn write_frame(&mut self, group: &mut HbmGroup, start: SimTime, output: usize) -> FrameOp {
        let n = self.next_write[output];
        let num_groups = self.num_groups(group) as u64;
        let row = self
            .region
            .row_for_write(output, n / num_groups)
            .unwrap_or_else(|| panic!("write_frame on a full region for output {output}"));
        self.next_write[output] += 1;
        // Record where a degraded frame lands so its read can replay the
        // placement exactly (nothing is recorded on a healthy device).
        let (mask, stuck) = self.subset_health(group, output);
        let (_, stripe) = self.subset_base(group, output);
        if mask != Self::full_mask(stripe) || !stuck.is_empty() {
            self.degraded[output].insert(n, (mask, stuck.clone()));
        }
        self.frame_op(group, start, output, n, row, Direction::Write, mask, &stuck)
    }

    /// Read the next frame for `output`, if one is buffered.
    pub fn read_frame(
        &mut self,
        group: &mut HbmGroup,
        start: SimTime,
        output: usize,
    ) -> Option<FrameOp> {
        if self.frames_buffered(output) == 0 {
            return None;
        }
        let n = self.next_read[output];
        let num_groups = self.num_groups(group) as u64;
        let row = self.region.row_for_read(output, n / num_groups);
        self.next_read[output] += 1;
        // Replay the write-time placement: a frame written degraded is
        // read from exactly the banks it landed on, and a frame written
        // healthy drains even off channels that have failed since
        // ("drain before dark" — a failed channel completes reads of
        // data written before the failure; it only refuses new writes).
        let (_, stripe) = self.subset_base(group, output);
        let (mask, stuck) = self.degraded[output]
            .remove(&n)
            .unwrap_or((Self::full_mask(stripe), Vec::new()));
        let op = self.frame_op(group, start, output, n, row, Direction::Read, mask, &stuck);
        self.region
            .reads_advanced_to(output, self.next_read[output] / num_groups);
        Some(op)
    }

    /// Drive a sustained 50/50 write/read duty cycle — the steady state
    /// of a switch, where every bit written is eventually read — cycling
    /// outputs round-robin, and report achieved bandwidth, turnaround
    /// loss and refresh behaviour.
    pub fn run_sustained(&mut self, group: &mut HbmGroup, frames: u64) -> SustainedReport {
        assert!(frames >= 2, "need at least one write and one read");
        let mut first_cas: Option<SimTime> = None;
        let mut end = SimTime::ZERO;
        let mut done = 0u64;
        let mut out = 0usize;
        let start = SimTime::ZERO;
        while done < frames {
            let op = self.write_frame(group, start.max(self.last_start), out);
            first_cas.get_or_insert(op.first_cas);
            end = end.max(op.end);
            done += 1;
            if done >= frames {
                break;
            }
            if let Some(op) = self.read_frame(group, start.max(self.last_start), out) {
                end = end.max(op.end);
                done += 1;
            }
            out = (out + 1) % self.cfg.num_outputs;
        }
        let t0 = first_cas.expect("at least one frame ran");
        let elapsed = end.since(t0);
        let data = self.cfg.frame_size(group.num_channels()) * done;
        let achieved = if elapsed.is_zero() {
            DataRate::ZERO
        } else {
            DataRate::from_bps(
                u64::try_from(
                    data.bits() as u128 * rip_units::PS_PER_S as u128 / elapsed.as_ps() as u128,
                )
                .expect("rate overflow"),
            )
        };
        let peak = group.peak_rate();
        let turnaround_ps: u64 = group
            .channels()
            .map(|c| c.stats().turnaround.total().as_ps())
            .sum();
        let turnaround_fraction = if group.num_channels() == 0 || elapsed.is_zero() {
            0.0
        } else {
            (turnaround_ps as f64 / group.num_channels() as f64) / elapsed.as_ps() as f64
        };
        let refreshes: u64 = group.channels().map(|c| c.stats().refreshes.get()).sum();
        // Worst staleness: oldest un-refreshed bank relative to run end.
        let max_refresh_gap = group
            .channels()
            .flat_map(|c| {
                (0..c.num_banks()).map(move |b| end.saturating_since(c.bank(b).last_refresh()))
            })
            .max()
            .unwrap_or(TimeDelta::ZERO);
        let effective_peak = group.effective_peak_rate();
        SustainedReport {
            frames: done,
            data,
            elapsed,
            achieved,
            peak,
            utilization: achieved.fraction_of(peak),
            effective_peak,
            effective_utilization: achieved.fraction_of(effective_peak),
            turnaround_fraction,
            refreshes,
            max_refresh_gap,
        }
    }
}

/// One degraded frame in snapshot form: `(frame, (mask_hi, mask_lo), stuck bank coords)`.
type DegradedFrameState = (u64, (u64, u64), Vec<(usize, usize)>);

/// Snapshot mirror of [`PfiController`]: `degraded` maps become sorted
/// `(frame, (mask_hi, mask_lo), stuck)` triples because the snapshot
/// format has no native u128 or integer-keyed maps. `BTreeMap`
/// iteration is already sorted, so the mirror is canonical and the
/// round trip is lossless.
#[derive(Serialize, Deserialize)]
struct PfiControllerState {
    cfg: PfiConfig,
    next_write: Vec<u64>,
    next_read: Vec<u64>,
    last_start: SimTime,
    refresh_enabled: bool,
    storm_until: SimTime,
    degraded: Vec<Vec<DegradedFrameState>>,
    region: RegionAllocator,
}

impl Serialize for PfiController {
    fn to_value(&self) -> Value {
        PfiControllerState {
            cfg: self.cfg,
            next_write: self.next_write.clone(),
            next_read: self.next_read.clone(),
            last_start: self.last_start,
            refresh_enabled: self.refresh_enabled,
            storm_until: self.storm_until,
            degraded: self
                .degraded
                .iter()
                .map(|m| {
                    m.iter()
                        .map(|(&n, &(mask, ref stuck))| {
                            (n, ((mask >> 64) as u64, mask as u64), stuck.clone())
                        })
                        .collect()
                })
                .collect(),
            region: self.region.clone(),
        }
        .to_value()
    }
}

impl Deserialize for PfiController {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = PfiControllerState::from_value(v)?;
        Ok(PfiController {
            cfg: s.cfg,
            next_write: s.next_write,
            next_read: s.next_read,
            last_start: s.last_start,
            refresh_enabled: s.refresh_enabled,
            storm_until: s.storm_until,
            degraded: s
                .degraded
                .into_iter()
                .map(|m| {
                    m.into_iter()
                        .map(|(n, (hi, lo), stuck)| (n, (((hi as u128) << 64) | lo as u128, stuck)))
                        .collect()
                })
                .collect(),
            region: s.region,
        })
    }
}

/// How the random-access baseline spreads accesses over the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Packets spread over the `T` parallel channels (the paper's
    /// "benefit of the doubt" variant: reduction 2.6×–39×).
    ParallelChannels,
    /// Every access striped across the whole ultra-wide interface as one
    /// logical word (the paper's "don't leverage parallel channels"
    /// variant: reduction up to ≈1,250×).
    SingleLogicalInterface,
}

/// Report of a random-access baseline run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AccessReport {
    /// Number of packet accesses performed.
    pub accesses: u64,
    /// Total data moved.
    pub data: DataSize,
    /// Measurement window.
    pub elapsed: TimeDelta,
    /// Achieved aggregate data rate.
    pub achieved: DataRate,
    /// Device peak rate.
    pub peak: DataRate,
    /// Throughput reduction factor vs peak (`peak / achieved`).
    pub reduction: f64,
}

/// The literature baseline of §3.1 Challenge 6: per-packet random bank
/// accesses with worst-case activate+precharge around every access
/// (\[7, 30, 54, 55, 59\] in the paper).
#[derive(Debug)]
pub struct RandomAccessController {
    pattern: AccessPattern,
    /// Strict (closed-page, single outstanding access per channel —
    /// the paper's model) vs pipelined (next ACT may overlap the
    /// previous transfer; an ablation that is still far from peak).
    strict: bool,
    /// Pad sub-burst transfers up to the burst granule (realistic DRAM
    /// behaviour) instead of the paper's idealized exact-size transfer.
    pad_to_burst: bool,
    rng: rand::rngs::StdRng,
}

impl RandomAccessController {
    /// Build a baseline controller.
    pub fn new(pattern: AccessPattern, seed: u64) -> Self {
        RandomAccessController {
            pattern,
            strict: true,
            pad_to_burst: false,
            rng: rng_for(seed, 0xACC),
        }
    }

    /// Toggle strict (paper-model) vs pipelined scheduling.
    pub fn set_strict(&mut self, strict: bool) {
        self.strict = strict;
    }

    /// Toggle burst padding (realistic) vs exact-size transfers
    /// (paper's benefit of the doubt).
    pub fn set_pad_to_burst(&mut self, pad: bool) {
        self.pad_to_burst = pad;
    }

    fn effective_share(&self, group: &HbmGroup, packet: DataSize) -> DataSize {
        match self.pattern {
            AccessPattern::ParallelChannels => {
                if self.pad_to_burst {
                    let burst = group.geometry().burst_size();
                    let n = packet.bits().div_ceil(burst.bits());
                    burst * n
                } else {
                    packet
                }
            }
            AccessPattern::SingleLogicalInterface => {
                let t = group.num_channels() as u64;
                let share = DataSize::from_bits(packet.bits().div_ceil(t));
                if self.pad_to_burst {
                    let burst = group.geometry().burst_size();
                    let n = share.bits().div_ceil(burst.bits());
                    burst * n
                } else {
                    share
                }
            }
        }
    }

    /// Perform `accesses` random accesses of `packet` size in direction
    /// `dir` and report the achieved bandwidth.
    pub fn run(
        &mut self,
        group: &mut HbmGroup,
        accesses: u64,
        packet: DataSize,
        dir: Direction,
    ) -> AccessReport {
        let t = group.num_channels();
        let banks = group.geometry().banks_per_channel;
        let rows = group.geometry().rows_per_bank();
        let share = self.effective_share(group, packet);
        let mut cursors = vec![SimTime::ZERO; t];
        let mut first: Option<SimTime> = None;
        let mut last = SimTime::ZERO;
        for i in 0..accesses {
            match self.pattern {
                AccessPattern::ParallelChannels => {
                    let ci = (i % t as u64) as usize;
                    let bank = self.rng.random_range(0..banks);
                    let row = self.rng.random_range(0..rows);
                    let (cas_t, done) =
                        self.one_access(group, ci, cursors[ci], bank, row, share, dir);
                    first.get_or_insert(cas_t);
                    cursors[ci] = done;
                    last = last.max(done);
                }
                AccessPattern::SingleLogicalInterface => {
                    // Lockstep across the whole interface: one logical
                    // access occupies every channel.
                    let bank = self.rng.random_range(0..banks);
                    let row = self.rng.random_range(0..rows);
                    let mut done_max = SimTime::ZERO;
                    let start = cursors[0];
                    for ci in 0..t {
                        let (cas_t, done) =
                            self.one_access(group, ci, start, bank, row, share, dir);
                        if ci == 0 {
                            first.get_or_insert(cas_t);
                        }
                        done_max = done_max.max(done);
                    }
                    for c in cursors.iter_mut() {
                        *c = done_max;
                    }
                    last = last.max(done_max);
                }
            }
        }
        let t0 = first.expect("at least one access");
        // Measure from the start of the run (time 0 cursor) so ACT/PRE
        // overheads of the first access are included — the baseline's
        // whole problem is that overhead.
        let elapsed = last.since(SimTime::ZERO.min(t0));
        let data = packet * accesses;
        let achieved = if elapsed.is_zero() {
            DataRate::ZERO
        } else {
            DataRate::from_bps(
                u64::try_from(
                    data.bits() as u128 * rip_units::PS_PER_S as u128 / elapsed.as_ps() as u128,
                )
                .expect("rate overflow"),
            )
        };
        let peak = group.peak_rate();
        AccessReport {
            accesses,
            data,
            elapsed,
            achieved,
            peak,
            reduction: peak.bps() as f64 / achieved.bps().max(1) as f64,
        }
    }

    /// One strict/pipelined ACT→CAS→PRE episode on channel `ci`,
    /// starting no earlier than `start`. Returns (CAS start, episode end).
    #[allow(clippy::too_many_arguments)]
    fn one_access(
        &mut self,
        group: &mut HbmGroup,
        ci: usize,
        start: SimTime,
        bank: usize,
        row: u64,
        share: DataSize,
        dir: Direction,
    ) -> (SimTime, SimTime) {
        let ch = group.channel_mut(ci);
        let act_t = ch.earliest_activate(bank).max(start);
        let ready = ch
            .activate(act_t, bank, row)
            .unwrap_or_else(|e| panic!("baseline ACT bug: {e}"));
        let cas_t = ready.max(ch.earliest_cas(bank, dir));
        let cas_end = ch
            .access(cas_t, bank, row, share, dir)
            .unwrap_or_else(|e| panic!("baseline CAS bug: {e}"));
        let pre_t = ch.earliest_precharge(bank);
        let idle_at = ch
            .precharge(pre_t, bank)
            .unwrap_or_else(|e| panic!("baseline PRE bug: {e}"));
        let episode_end = if self.strict { idle_at } else { cas_end };
        (cas_t, episode_end)
    }
}

/// An open-page random-access controller: the strongest "smart but
/// PFI-less" baseline. Rows are left open after an access; an access
/// that hits the open row skips the ACT/PRE envelope entirely, and
/// misses overlap their PRE/ACT with other banks' transfers (fully
/// pipelined — more generous than the paper's worst-case model, whose
/// strict envelope is reproduced by [`RandomAccessController`]).
/// At zero locality it is tFAW-limited (~13× reduction for 64 B);
/// `locality` is the probability that an access reuses the previous
/// (bank, row) on its channel — sweeping it shows how much row locality
/// a demand-oblivious design would need to approach peak. Internet
/// traffic interleaved across flows has essentially none; PFI
/// *manufactures* perfect locality by construction (the E1b ablation).
#[derive(Debug)]
pub struct OpenPageController {
    /// P(next access on a channel hits the currently open row).
    locality: f64,
    rng: rand::rngs::StdRng,
}

impl OpenPageController {
    /// Build with the given row-hit probability in `[0, 1]`.
    pub fn new(locality: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&locality), "locality out of range");
        OpenPageController {
            locality,
            rng: rng_for(seed, 0x09E4),
        }
    }

    /// Perform `accesses` packet accesses of `packet` size spread
    /// round-robin over the channels, leaving rows open, and report the
    /// achieved bandwidth.
    pub fn run(
        &mut self,
        group: &mut HbmGroup,
        accesses: u64,
        packet: DataSize,
        dir: Direction,
    ) -> AccessReport {
        let t = group.num_channels();
        let banks = group.geometry().banks_per_channel;
        let rows = group.geometry().rows_per_bank();
        // Per-channel open page: (bank, row) if any.
        let mut open: Vec<Option<(usize, u64)>> = vec![None; t];
        let mut last = SimTime::ZERO;
        for i in 0..accesses {
            let ci = (i % t as u64) as usize;
            let hit = open[ci].is_some() && self.rng.random_bool(self.locality);
            let (bank, row) = match open[ci] {
                Some(page) if hit => page,
                _ => (
                    self.rng.random_range(0..banks),
                    self.rng.random_range(0..rows),
                ),
            };
            let ch = group.channel_mut(ci);
            if !hit {
                // Close the previously open row (if any), then open the
                // new one.
                if let Some((old_bank, _)) = open[ci] {
                    let pre_t = ch.earliest_precharge(old_bank);
                    ch.precharge(pre_t, old_bank)
                        .unwrap_or_else(|e| panic!("open-page PRE bug: {e}"));
                }
                let act_t = ch.earliest_activate(bank);
                ch.activate(act_t, bank, row)
                    .unwrap_or_else(|e| panic!("open-page ACT bug: {e}"));
                open[ci] = Some((bank, row));
            }
            let cas_t = ch
                .bank(bank)
                .ready_for_cas()
                .max(ch.earliest_cas(bank, dir));
            let end = ch
                .access(cas_t, bank, row, packet, dir)
                .unwrap_or_else(|e| panic!("open-page CAS bug: {e}"));
            last = last.max(end);
        }
        let elapsed = last.since(SimTime::ZERO);
        let data = packet * accesses;
        let achieved = if elapsed.is_zero() {
            DataRate::ZERO
        } else {
            DataRate::from_bps(
                u64::try_from(
                    data.bits() as u128 * rip_units::PS_PER_S as u128 / elapsed.as_ps() as u128,
                )
                .expect("rate overflow"),
            )
        };
        let peak = group.peak_rate();
        AccessReport {
            accesses,
            data,
            elapsed,
            achieved,
            peak,
            reduction: peak.bps() as f64 / achieved.bps().max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::HbmGeometry;
    use crate::timing::HbmTiming;

    /// A small group for fast tests: 1 stack of 4 channels, 16 banks.
    fn small_group() -> HbmGroup {
        let geo = HbmGeometry {
            channels_per_stack: 4,
            channel_width_bits: 64,
            gbps_per_pin: 10,
            banks_per_channel: 16,
            row_size: DataSize::from_kib(2),
            stack_capacity: DataSize::from_gib(8),
            burst_length: 8,
        };
        HbmGroup::new(1, geo, HbmTiming::hbm4())
    }

    fn small_cfg() -> PfiConfig {
        PfiConfig {
            gamma: 4,
            segment: DataSize::from_kib(1),
            num_outputs: 4,
            stripe_channels: None,
            region_mode: RegionMode::Static,
        }
    }

    #[test]
    fn reference_config_validates() {
        let group = HbmGroup::reference();
        let cfg = PfiConfig::reference();
        cfg.validate(&group).expect("reference PFI config is valid");
        assert_eq!(
            cfg.frame_size(group.num_channels()),
            DataSize::from_kib(512)
        );
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let group = small_group();
        // gamma not dividing bank count
        let mut cfg = small_cfg();
        cfg.gamma = 3;
        assert!(cfg.validate(&group).is_err());
        // segment not burst-aligned
        let mut cfg = small_cfg();
        cfg.segment = DataSize::from_bytes(100);
        assert!(cfg.validate(&group).is_err());
        // segment not a unit fraction of the row
        let mut cfg = small_cfg();
        cfg.segment = DataSize::from_bytes(1536);
        assert!(cfg.validate(&group).is_err());
        // gamma too small for tRC (gamma=1: span 12.8 ns < tRC 30 ns)
        let mut cfg = small_cfg();
        cfg.gamma = 1;
        assert!(cfg.validate(&group).is_err());
        // segment too small for tFAW (4 x 64B = 4 x 0.8 ns << 40 ns)
        let mut cfg = small_cfg();
        cfg.segment = DataSize::from_bytes(64);
        assert!(cfg.validate(&group).is_err());
    }

    #[test]
    fn frame_counters_track_fifo_occupancy() {
        let mut group = small_group();
        let mut pfi = PfiController::new(small_cfg(), &group).unwrap();
        assert_eq!(pfi.frames_buffered(0), 0);
        assert!(pfi.read_frame(&mut group, SimTime::ZERO, 0).is_none());
        pfi.write_frame(&mut group, SimTime::ZERO, 0);
        let t = pfi.last_start;
        pfi.write_frame(&mut group, t, 0);
        assert_eq!(pfi.frames_buffered(0), 2);
        let op = pfi.read_frame(&mut group, t, 0).unwrap();
        assert_eq!(op.frame_index, 0);
        assert_eq!(pfi.frames_buffered(0), 1);
    }

    #[test]
    fn consecutive_frames_use_consecutive_groups() {
        let mut group = small_group();
        let mut pfi = PfiController::new(small_cfg(), &group).unwrap();
        let num_groups = pfi.num_groups(&group); // 16/4 = 4
        assert_eq!(num_groups, 4);
        let mut t = SimTime::ZERO;
        for n in 0..6u64 {
            let op = pfi.write_frame(&mut group, t, 1);
            assert_eq!(op.frame_index, n);
            assert_eq!(op.group as u64, n % num_groups as u64);
            t = pfi.last_start;
        }
    }

    #[test]
    fn outputs_use_disjoint_rows() {
        let group = small_group();
        let pfi = PfiController::new(small_cfg(), &group).unwrap();
        let num_groups = pfi.num_groups(&group) as u64;
        // Same frame index, different outputs -> different rows.
        let r0 = pfi.region().row_for_read(0, 0);
        let r1 = pfi.region().row_for_read(1, 0);
        assert_ne!(r0, r1);
        // Region wrap keeps rows inside the per-output static region.
        let rows_per_region = group.geometry().rows_per_bank() / 4;
        for n in 0..10_000u64 {
            let r = pfi.region().row_for_read(2, n / num_groups);
            assert!(r >= 2 * rows_per_region && r < 3 * rows_per_region);
        }
    }

    #[test]
    fn dynamic_region_mode_runs_sustained_at_peak_too() {
        let mut group = small_group();
        let mut cfg = small_cfg();
        cfg.region_mode = RegionMode::DynamicPages { page_rows: 64 };
        let mut pfi = PfiController::new(cfg, &group).unwrap();
        let report = pfi.run_sustained(&mut group, 200);
        assert!(report.utilization > 0.95, "{}", report.utilization);
        // Pointer SRAM stays small.
        assert!(pfi.pointer_sram() < rip_units::DataSize::from_kib(64));
    }

    #[test]
    fn static_can_accept_caps_at_region_capacity() {
        let mut group = small_group();
        let mut cfg = small_cfg();
        // Shrink the device so the region fills quickly: 1 GiB stack.
        let geo = HbmGeometry {
            stack_capacity: DataSize::from_gib(1),
            ..*group.geometry()
        };
        let small = HbmGroup::new(1, geo, HbmTiming::hbm4());
        cfg.num_outputs = 4;
        let mut pfi = PfiController::new(cfg, &small).unwrap();
        group = small;
        let mut t = SimTime::ZERO;
        let mut accepted = 0u64;
        while pfi.can_accept_frame(&group, 0) {
            pfi.write_frame(&mut group, t, 0);
            t = pfi.last_start;
            accepted += 1;
            assert!(accepted < 1_000_000, "never filled");
        }
        assert!(accepted > 0);
        // Draining one frame re-opens capacity.
        pfi.read_frame(&mut group, t, 0).unwrap();
        // One read frees a slot only once a whole row-slot drains; drain
        // a full group cycle to be sure.
        for _ in 0..pfi.num_groups(&group) {
            if pfi.read_frame(&mut group, t, 0).is_none() {
                break;
            }
        }
        assert!(pfi.can_accept_frame(&group, 0));
    }

    #[test]
    fn sustained_write_read_reaches_near_peak() {
        let mut group = small_group();
        let mut pfi = PfiController::new(small_cfg(), &group).unwrap();
        let report = pfi.run_sustained(&mut group, 200);
        // Paper claim (E2): PFI runs at peak minus ~2% transitions.
        assert!(
            report.utilization > 0.95,
            "utilization {} too low",
            report.utilization
        );
        assert!(
            report.turnaround_fraction < 0.03,
            "turnaround fraction {} too high",
            report.turnaround_fraction
        );
    }

    #[test]
    fn sustained_run_hides_refresh() {
        let mut group = small_group();
        let mut pfi = PfiController::new(small_cfg(), &group).unwrap();
        // Run long enough to force many refresh periods: 500 frames
        // x ~51.2 ns ~= 25.6 us >> tREFIsb = 3.9 us.
        let report = pfi.run_sustained(&mut group, 500);
        assert!(report.refreshes > 0, "refresh engine never ran");
        // Every bank refreshed within 2x the nominal period.
        let t_refi = group.timing().t_refi_sb;
        assert!(
            report.max_refresh_gap <= t_refi * 2,
            "refresh starved: {} > {}",
            report.max_refresh_gap,
            t_refi * 2
        );
        // And refresh did not dent utilization.
        assert!(
            report.utilization > 0.95,
            "utilization {}",
            report.utilization
        );
    }

    #[test]
    fn refresh_disabled_runs_clean_but_starves() {
        let mut group = small_group();
        let mut pfi = PfiController::new(small_cfg(), &group).unwrap();
        pfi.set_refresh_enabled(false);
        let report = pfi.run_sustained(&mut group, 300);
        assert_eq!(report.refreshes, 0);
        assert!(report.max_refresh_gap > group.timing().t_refi_sb);
    }

    #[test]
    fn stripe_validation() {
        let group = small_group(); // 4 channels
        let mut cfg = small_cfg();
        cfg.stripe_channels = Some(2);
        cfg.validate(&group).expect("2 divides 4");
        assert_eq!(cfg.frame_size(4), DataSize::from_kib(8));
        cfg.stripe_channels = Some(3);
        assert!(cfg.validate(&group).is_err());
        cfg.stripe_channels = Some(0);
        assert!(cfg.validate(&group).is_err());
    }

    #[test]
    fn striped_frames_use_disjoint_channel_subsets() {
        let mut group = small_group(); // 4 channels
        let mut cfg = small_cfg();
        cfg.stripe_channels = Some(2); // 2 subsets of 2 channels
        let mut pfi = PfiController::new(cfg, &group).unwrap();
        // Output 0 -> subset 0 (channels 0..2); output 1 -> subset 1.
        pfi.write_frame(&mut group, SimTime::ZERO, 0);
        assert!(group.channel(0).stats().writes.get() > 0);
        assert!(group.channel(1).stats().writes.get() > 0);
        assert_eq!(group.channel(2).stats().writes.get(), 0);
        pfi.write_frame(&mut group, SimTime::ZERO, 1);
        assert!(group.channel(2).stats().writes.get() > 0);
        assert!(group.channel(3).stats().writes.get() > 0);
    }

    #[test]
    fn striped_sustained_still_near_peak() {
        // Different outputs run on disjoint subsets concurrently, so the
        // aggregate still approaches peak.
        let mut group = small_group();
        let mut cfg = small_cfg();
        cfg.stripe_channels = Some(2);
        let mut pfi = PfiController::new(cfg, &group).unwrap();
        let report = pfi.run_sustained(&mut group, 400);
        assert!(
            report.utilization > 0.90,
            "striped utilization {}",
            report.utilization
        );
    }

    #[test]
    fn random_access_64b_strict_reduction_matches_paper() {
        // Paper: 39x reduction for 64-byte packets with parallel channels.
        let mut group = small_group();
        let mut ctl = RandomAccessController::new(AccessPattern::ParallelChannels, 7);
        let report = ctl.run(&mut group, 2000, DataSize::from_bytes(64), Direction::Write);
        // Expected: (30 ns + 0.8 ns) / 0.8 ns = 38.5.
        assert!(
            (report.reduction - 38.5).abs() < 1.5,
            "reduction {} != ~38.5",
            report.reduction
        );
    }

    #[test]
    fn random_access_1500b_strict_reduction_matches_paper() {
        // Paper: 2.6x reduction for 1,500-byte packets.
        let mut group = small_group();
        let mut ctl = RandomAccessController::new(AccessPattern::ParallelChannels, 7);
        let report = ctl.run(
            &mut group,
            2000,
            DataSize::from_bytes(1500),
            Direction::Write,
        );
        // Expected: (30 + 18.75) / 18.75 = 2.6.
        assert!(
            (report.reduction - 2.6).abs() < 0.1,
            "reduction {} != ~2.6",
            report.reduction
        );
    }

    #[test]
    fn single_interface_64b_reduction_is_extreme() {
        // Paper: up to ~1,250x without parallel channels. On this small
        // 4-channel group the share is 64B/4 = 16B = 0.2 ns vs 30 ns
        // overhead: reduction ~151x; the full-size figure is checked in
        // the integration tests against the 32-channel stack.
        let mut group = small_group();
        let mut ctl = RandomAccessController::new(AccessPattern::SingleLogicalInterface, 7);
        let report = ctl.run(&mut group, 500, DataSize::from_bytes(64), Direction::Write);
        let expect = (30.0 + 0.2) / 0.2;
        assert!(
            (report.reduction - expect).abs() / expect < 0.05,
            "reduction {} != ~{expect}",
            report.reduction
        );
    }

    #[test]
    fn pipelined_random_access_still_far_from_peak() {
        let mut group = small_group();
        let mut ctl = RandomAccessController::new(AccessPattern::ParallelChannels, 7);
        ctl.set_strict(false);
        let report = ctl.run(&mut group, 2000, DataSize::from_bytes(64), Direction::Write);
        // tFAW caps each channel at 4 ACTs / 40 ns -> 1 access per 10 ns;
        // 0.8 ns of data per 10 ns -> reduction ~12.5x. Even the generous
        // variant loses an order of magnitude.
        assert!(
            report.reduction > 8.0,
            "pipelined reduction {} unexpectedly small",
            report.reduction
        );
        // But it must beat the strict variant.
        let mut group2 = small_group();
        let mut strict = RandomAccessController::new(AccessPattern::ParallelChannels, 7);
        let strict_report = strict.run(
            &mut group2,
            2000,
            DataSize::from_bytes(64),
            Direction::Write,
        );
        assert!(report.reduction < strict_report.reduction);
    }

    #[test]
    fn burst_padding_makes_baseline_worse() {
        let mut g1 = small_group();
        let mut a = RandomAccessController::new(AccessPattern::ParallelChannels, 7);
        let r1 = a.run(&mut g1, 1000, DataSize::from_bytes(80), Direction::Write);
        let mut g2 = small_group();
        let mut b = RandomAccessController::new(AccessPattern::ParallelChannels, 7);
        b.set_pad_to_burst(true);
        let r2 = b.run(&mut g2, 1000, DataSize::from_bytes(80), Direction::Write);
        assert!(r2.reduction > r1.reduction);
    }

    #[test]
    fn open_page_zero_locality_is_tfaw_limited() {
        // With no row reuse every access needs an ACT; the pipelined
        // open-page engine is then capped by the four-activation window
        // at 4 accesses per tFAW = 40 ns -> 0.8 ns of data per 10 ns
        // -> ~12.5x reduction (still an order of magnitude off peak,
        // and *better* than the paper's worst-case 38.5x envelope).
        let mut g1 = small_group();
        let mut op = OpenPageController::new(0.0, 3);
        let r1 = op.run(&mut g1, 4000, DataSize::from_bytes(64), Direction::Write);
        assert!(
            r1.reduction > 10.0 && r1.reduction < 20.0,
            "{}",
            r1.reduction
        );
        // And it must not beat the strict baseline's analytic factor.
        let mut g2 = small_group();
        let mut strict = RandomAccessController::new(AccessPattern::ParallelChannels, 3);
        let rs = strict.run(&mut g2, 4000, DataSize::from_bytes(64), Direction::Write);
        assert!(r1.reduction < rs.reduction);
    }

    #[test]
    fn open_page_high_locality_recovers_bandwidth_but_not_peak() {
        let mut g = small_group();
        let mut op = OpenPageController::new(0.9, 3);
        let r = op.run(&mut g, 4000, DataSize::from_bytes(64), Direction::Write);
        // 90% hits with overlapped misses: most of the envelope hides,
        // but the residual ACT pressure still costs nearly 2x.
        assert!(r.reduction < 3.0, "{}", r.reduction);
        assert!(r.reduction > 1.3, "{}", r.reduction);
    }

    #[test]
    fn open_page_locality_sweep_is_monotone() {
        let mut prev = f64::INFINITY;
        for loc in [0.0, 0.5, 0.9, 0.99] {
            let mut g = small_group();
            let mut op = OpenPageController::new(loc, 7);
            let r = op.run(&mut g, 3000, DataSize::from_bytes(64), Direction::Write);
            assert!(r.reduction < prev + 0.5, "locality {loc}: {}", r.reduction);
            prev = r.reduction;
        }
    }

    #[test]
    #[should_panic(expected = "locality out of range")]
    fn open_page_rejects_bad_locality() {
        OpenPageController::new(1.5, 0);
    }

    #[test]
    fn validation_reports_typed_errors() {
        let group = small_group();
        let mut cfg = small_cfg();
        cfg.gamma = 3;
        assert_eq!(
            cfg.validate(&group),
            Err(PfiConfigError::GammaBanks {
                banks: 16,
                gamma: 3
            })
        );
        let mut cfg = small_cfg();
        cfg.gamma = 1;
        assert!(matches!(
            cfg.validate(&group),
            Err(PfiConfigError::GammaTrc { .. })
        ));
        let mut cfg = small_cfg();
        cfg.stripe_channels = Some(3);
        assert!(matches!(
            cfg.validate(&group),
            Err(PfiConfigError::Stripe {
                stripe: 3,
                channels: 4
            })
        ));
        // The typed error formats like the old string did.
        let msg = cfg.validate(&group).unwrap_err().to_string();
        assert!(msg.contains("stripe width 3"), "{msg}");
    }

    #[test]
    fn one_dead_channel_sustains_alive_fraction_of_peak() {
        let mut group = small_group();
        let mut pfi = PfiController::new(small_cfg(), &group).unwrap();
        group.fail_channel(3);
        pfi.check_degraded(&group).expect("1-of-4 dead is feasible");
        let report = pfi.run_sustained(&mut group, 300);
        // Survivors still run near their own ceiling...
        assert!(
            report.effective_utilization > 0.90,
            "effective utilization {}",
            report.effective_utilization
        );
        // ...so the aggregate lands at ~3/4 of the healthy device peak.
        assert!(
            report.utilization > 0.68 && report.utilization < 0.78,
            "degraded utilization {}",
            report.utilization
        );
        assert_eq!(report.effective_peak, group.geometry().channel_rate() * 3);
    }

    #[test]
    fn fail_recover_before_traffic_is_identical_to_healthy() {
        let mut g1 = small_group();
        let mut p1 = PfiController::new(small_cfg(), &g1).unwrap();
        let r1 = p1.run_sustained(&mut g1, 100);
        let mut g2 = small_group();
        let mut p2 = PfiController::new(small_cfg(), &g2).unwrap();
        g2.fail_channel(2);
        g2.stick_bank(0, 5);
        g2.recover_channel(2);
        g2.unstick_bank(0, 5);
        let r2 = p2.run_sustained(&mut g2, 100);
        assert_eq!(r1.achieved, r2.achieved);
        assert_eq!(r1.elapsed, r2.elapsed);
        assert_eq!(r1.refreshes, r2.refreshes);
    }

    #[test]
    fn stuck_bank_costs_little() {
        let mut group = small_group();
        let mut pfi = PfiController::new(small_cfg(), &group).unwrap();
        group.stick_bank(1, 0);
        pfi.check_degraded(&group)
            .expect("one stuck bank is feasible");
        let report = pfi.run_sustained(&mut group, 300);
        // One stuck bank of 64 (4 channels x 16) barely dents the rate.
        assert!(report.utilization > 0.90, "{}", report.utilization);
    }

    #[test]
    fn fully_stuck_group_is_rejected() {
        let mut group = small_group();
        let pfi = PfiController::new(small_cfg(), &group).unwrap();
        for j in 0..4 {
            group.stick_bank(2, j); // all of interleaving group 0
        }
        assert_eq!(
            pfi.check_degraded(&group),
            Err(PfiConfigError::GroupStuck {
                channel: 2,
                group: 0
            })
        );
    }

    #[test]
    fn all_channels_dead_is_rejected() {
        let mut group = small_group();
        let pfi = PfiController::new(small_cfg(), &group).unwrap();
        for ci in 0..4 {
            group.fail_channel(ci);
        }
        assert_eq!(
            pfi.check_degraded(&group),
            Err(PfiConfigError::SubsetDead { subset: 0 })
        );
    }

    #[test]
    fn too_many_dead_channels_overflow_redistribution() {
        // 2 KiB rows / 1 KiB segments leave one spare slot per open row:
        // 2-of-4 dead is exactly absorbable, 3-of-4 is not.
        let mut group = small_group();
        let pfi = PfiController::new(small_cfg(), &group).unwrap();
        group.fail_channel(0);
        group.fail_channel(1);
        pfi.check_degraded(&group)
            .expect("2-of-4 dead is the boundary case");
        group.fail_channel(2);
        assert_eq!(
            pfi.check_degraded(&group),
            Err(PfiConfigError::RedistributionOverflow {
                subset: 0,
                displaced: 12,
                spare: 4
            })
        );
    }

    #[test]
    fn degraded_write_replays_placement_on_read() {
        let mut group = small_group();
        let mut pfi = PfiController::new(small_cfg(), &group).unwrap();
        group.fail_channel(3);
        pfi.write_frame(&mut group, SimTime::ZERO, 0);
        assert_eq!(group.channel(3).stats().writes.get(), 0);
        // The channel comes back before the frame drains: the read must
        // replay the degraded placement, not touch the recovered channel.
        group.recover_channel(3);
        let t = pfi.last_issue_time();
        pfi.read_frame(&mut group, t, 0).unwrap();
        assert_eq!(group.channel(3).stats().reads.get(), 0);
        // The next (healthy) frame uses all four channels again.
        let t = pfi.last_issue_time();
        pfi.write_frame(&mut group, t, 0);
        let t = pfi.last_issue_time();
        pfi.read_frame(&mut group, t, 0).unwrap();
        assert!(group.channel(3).stats().writes.get() > 0);
        assert!(group.channel(3).stats().reads.get() > 0);
    }

    #[test]
    fn controller_snapshot_roundtrip_is_behaviour_identical() {
        // Run a degraded workload so the `degraded` placement maps are
        // non-empty, snapshot mid-run, and check the restored controller
        // produces the exact same subsequent ops as the original.
        let mut group = small_group();
        let mut pfi = PfiController::new(small_cfg(), &group).unwrap();
        group.fail_channel(3);
        group.stick_bank(0, 2);
        let mut t = SimTime::ZERO;
        for out in 0..4 {
            pfi.write_frame(&mut group, t, out);
            t = pfi.last_issue_time();
        }
        let v = pfi.to_value();
        let mut restored = PfiController::from_value(&v).expect("roundtrip");
        let mut group2 = group.clone();
        for out in 0..4 {
            let a = pfi.read_frame(&mut group, t, out).unwrap();
            let b = restored.read_frame(&mut group2, t, out).unwrap();
            assert_eq!(a, b);
            t = pfi.last_issue_time();
        }
        assert_eq!(pfi.frames_buffered(0), restored.frames_buffered(0));
    }

    #[test]
    fn refresh_storm_tanks_utilization() {
        let mut g1 = small_group();
        let mut p1 = PfiController::new(small_cfg(), &g1).unwrap();
        let healthy = p1.run_sustained(&mut g1, 300);
        let mut g2 = small_group();
        let mut p2 = PfiController::new(small_cfg(), &g2).unwrap();
        p2.set_refresh_storm(SimTime::from_ns(1_000_000));
        assert!(p2.refresh_storm_active(SimTime::ZERO));
        let storm = p2.run_sustained(&mut g2, 300);
        assert!(
            storm.utilization < healthy.utilization - 0.05,
            "storm {} vs healthy {}",
            storm.utilization,
            healthy.utilization
        );
        assert!(
            storm.refreshes > healthy.refreshes,
            "storm {} vs healthy {} refreshes",
            storm.refreshes,
            healthy.refreshes
        );
        // Device health is unaffected — the storm is a controller fault.
        assert_eq!(storm.effective_peak, storm.peak);
    }
}
