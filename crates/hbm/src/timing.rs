//! HBM timing parameter sets.

use rip_units::{DataRate, DataSize, TimeDelta};
use serde::{Deserialize, Serialize};

/// The timing rule set enforced by every [`crate::Channel`].
///
/// The reference values ([`HbmTiming::hbm4`]) are chosen to match the two
/// quantities the paper pins down about HBM4 (\[34\] in the paper):
///
/// * "about 30 ns just to activate and close (precharge) banks" —
///   `t_rcd + t_rp = 16 + 14 = 30 ns`. `t_ras` is set equal to `t_rcd`
///   so that the full ACT→PRE envelope of a short access is exactly that
///   30 ns figure: the paper gives the random-access baselines the
///   benefit of the doubt, and a longer (more realistic, ~29 ns) tRAS
///   would only make those baselines worse while leaving PFI unaffected
///   (PFI's 1 KiB segments keep rows open past tRAS anyway);
/// * write/read phase transitions totalling "about 2 % of the cycle
///   duration" — turnaround penalties of ~1 ns against a 51.2 ns frame
///   phase per direction.
///
/// Everything else (tFAW, refresh) is set to representative HBM-class
/// values; the PFI schedule is *validated* against all of them on every
/// simulated command, so any inconsistency would fail loudly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HbmTiming {
    /// ACT → first column access (row open latency).
    pub t_rcd: TimeDelta,
    /// PRE duration (row close latency).
    pub t_rp: TimeDelta,
    /// Minimum time a row must stay open (ACT → PRE).
    pub t_ras: TimeDelta,
    /// Four-activation window: at most 4 ACTs per channel in any window
    /// of this length (instantaneous-current limit).
    pub t_faw: TimeDelta,
    /// Extra bus gap when a read follows a write on the same channel.
    pub t_wtr: TimeDelta,
    /// Extra bus gap when a write follows a read on the same channel.
    pub t_rtw: TimeDelta,
    /// Single-bank refresh (REFsb) duration; the bank is unusable while
    /// refreshing.
    pub t_rfc_sb: TimeDelta,
    /// Average interval at which *each bank* must be refreshed once.
    pub t_refi_sb: TimeDelta,
}

impl HbmTiming {
    /// Reference HBM4 timing set (see type-level docs for provenance).
    pub const fn hbm4() -> Self {
        HbmTiming {
            t_rcd: TimeDelta::from_ns(16),
            t_rp: TimeDelta::from_ns(14),
            t_ras: TimeDelta::from_ns(16),
            t_faw: TimeDelta::from_ns(40),
            t_wtr: TimeDelta::from_ns(1),
            t_rtw: TimeDelta::from_ns(1),
            t_rfc_sb: TimeDelta::from_ns(120),
            // 64 banks share a 3.9 us all-bank REFI budget -> each bank
            // roughly every 3.9 us in steady state; REFsb gives slack.
            t_refi_sb: TimeDelta::from_ns(3_900),
        }
    }

    /// The worst-case random-access overhead the paper quotes: the cost
    /// of opening and closing a row around an access (tRCD + tRP).
    pub fn random_access_overhead(&self) -> TimeDelta {
        self.t_rcd + self.t_rp
    }

    /// Minimum ACT-to-ACT interval for the *same* bank (tRC = tRAS + tRP).
    pub fn t_rc(&self) -> TimeDelta {
        self.t_ras + self.t_rp
    }

    /// Guaranteed conservative-lookahead window for parallel simulation.
    ///
    /// Between any command issued on a channel `now` and the earliest
    /// *next* legal command on that channel, the timing rules impose at
    /// least this much simulated time: a fresh row access waits tRCD
    /// before its first column access, closing one waits tRP, and the
    /// four-activation window admits at most 4 ACTs per tFAW (so
    /// consecutive ACTs average at least tFAW/4 apart). The minimum of
    /// those horizons is a floor on how soon one channel's state can
    /// influence another's — a shard simulating up to `now +
    /// lookahead_bound()` cannot miss a cross-shard effect. Parallel
    /// engines use it to size their conservative windows (for the
    /// reference HBM4 set: min(16, 14, 10) = 10 ns).
    pub fn lookahead_bound(&self) -> TimeDelta {
        let faw_slot = TimeDelta::from_ps(self.t_faw.as_ps() / 4);
        self.t_rcd.min(self.t_rp).min(faw_slot)
    }

    /// Validate internal consistency (e.g. tRAS ≥ tRCD).
    pub fn validate(&self) -> Result<(), String> {
        if self.t_ras < self.t_rcd {
            return Err(format!(
                "tRAS ({}) must be at least tRCD ({})",
                self.t_ras, self.t_rcd
            ));
        }
        if self.t_faw.is_zero() {
            return Err("tFAW must be positive".into());
        }
        if self.t_refi_sb < self.t_rfc_sb {
            return Err(format!(
                "tREFIsb ({}) must exceed tRFCsb ({})",
                self.t_refi_sb, self.t_rfc_sb
            ));
        }
        Ok(())
    }
}

impl Default for HbmTiming {
    fn default() -> Self {
        Self::hbm4()
    }
}

/// Convenience: exact transfer time of `size` on a channel of `rate`.
pub(crate) fn bus_time(rate: DataRate, size: DataSize) -> TimeDelta {
    rate.transfer_time(size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm4_matches_paper_random_access_penalty() {
        let t = HbmTiming::hbm4();
        assert_eq!(t.random_access_overhead(), TimeDelta::from_ns(30));
        t.validate().expect("reference timing must be valid");
    }

    #[test]
    fn t_rc_is_ras_plus_rp() {
        let t = HbmTiming::hbm4();
        assert_eq!(t.t_rc(), TimeDelta::from_ns(30));
    }

    #[test]
    fn lookahead_bound_is_the_tightest_command_horizon() {
        // Reference HBM4: tRCD=16, tRP=14, tFAW/4=10 -> 10 ns.
        let t = HbmTiming::hbm4();
        assert_eq!(t.lookahead_bound(), TimeDelta::from_ns(10));
        // A slower-precharge part is bounded by the FAW slot; a part
        // with a tight tRP is bounded by tRP.
        let mut t = HbmTiming::hbm4();
        t.t_rp = TimeDelta::from_ns(4);
        assert_eq!(t.lookahead_bound(), TimeDelta::from_ns(4));
    }

    #[test]
    fn validation_rejects_inconsistent_sets() {
        let mut t = HbmTiming::hbm4();
        t.t_ras = TimeDelta::from_ns(1);
        assert!(t.validate().is_err());

        let mut t = HbmTiming::hbm4();
        t.t_faw = TimeDelta::ZERO;
        assert!(t.validate().is_err());

        let mut t = HbmTiming::hbm4();
        t.t_refi_sb = TimeDelta::from_ns(1);
        assert!(t.validate().is_err());
    }
}
