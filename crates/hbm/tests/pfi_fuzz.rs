//! Property fuzz of the PFI controller: arbitrary interleavings of
//! frame writes and reads across outputs, region modes and stripe
//! widths must (a) never violate a device timing rule — the channel
//! checker panics on any illegal command — and (b) preserve per-output
//! frame FIFO accounting.

use proptest::prelude::*;
use rip_hbm::{HbmGeometry, HbmGroup, HbmTiming, PfiConfig, PfiController, RegionMode};
use rip_units::{DataSize, SimTime, TimeDelta};

fn small_group() -> HbmGroup {
    let geo = HbmGeometry {
        channels_per_stack: 4,
        channel_width_bits: 64,
        gbps_per_pin: 10,
        banks_per_channel: 16,
        row_size: DataSize::from_kib(2),
        stack_capacity: DataSize::from_gib(1),
        burst_length: 8,
    };
    HbmGroup::new(1, geo, HbmTiming::hbm4())
}

/// One fuzz step: (output, is_write, time advance in ns).
type Step = (usize, bool, u64);

fn run_fuzz(
    steps: &[Step],
    region_mode: RegionMode,
    stripe: Option<usize>,
    refresh: bool,
) -> Result<(), TestCaseError> {
    let mut group = small_group();
    let cfg = PfiConfig {
        gamma: 4,
        segment: DataSize::from_kib(1),
        num_outputs: 4,
        stripe_channels: stripe,
        region_mode,
    };
    let mut pfi = PfiController::new(cfg, &group).unwrap();
    pfi.set_refresh_enabled(refresh);
    let mut now = SimTime::ZERO;
    let mut written = [0u64; 4];
    let mut read = [0u64; 4];
    for &(output, is_write, advance) in steps {
        let output = output % 4;
        now = now.max(pfi.last_issue_time()) + TimeDelta::from_ns(advance);
        if is_write {
            if pfi.can_accept_frame(&group, output) {
                let op = pfi.write_frame(&mut group, now, output);
                prop_assert_eq!(op.output, output);
                prop_assert_eq!(op.frame_index, written[output]);
                written[output] += 1;
                prop_assert!(op.end > op.first_cas);
            }
        } else {
            match pfi.read_frame(&mut group, now, output) {
                Some(op) => {
                    prop_assert_eq!(op.frame_index, read[output]);
                    read[output] += 1;
                }
                None => prop_assert_eq!(written[output], read[output]),
            }
        }
        prop_assert_eq!(pfi.frames_buffered(output), written[output] - read[output]);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn static_regions_survive_arbitrary_interleavings(
        steps in prop::collection::vec((0usize..4, any::<bool>(), 0u64..200), 1..120),
        refresh in any::<bool>(),
    ) {
        run_fuzz(&steps, RegionMode::Static, None, refresh)?;
    }

    #[test]
    fn dynamic_pages_survive_arbitrary_interleavings(
        steps in prop::collection::vec((0usize..4, any::<bool>(), 0u64..200), 1..120),
    ) {
        run_fuzz(&steps, RegionMode::DynamicPages { page_rows: 2 }, None, true)?;
    }

    #[test]
    fn striped_frames_survive_arbitrary_interleavings(
        steps in prop::collection::vec((0usize..4, any::<bool>(), 0u64..200), 1..120),
        stripe_pow in 0u32..2,
    ) {
        let stripe = 4usize >> stripe_pow; // 4 or 2 channels
        run_fuzz(&steps, RegionMode::Static, Some(stripe), true)?;
    }
}
