//! Property fuzz of the region allocator: arbitrary FIFO write/read
//! slot sequences per output must keep rows in bounds, keep live
//! outputs' rows disjoint, and conserve pages.

use proptest::prelude::*;
use rip_fuzz_helpers::*;

/// Local helpers module (kept in-file; `rip_fuzz_helpers` is a shim so
/// the name reads well in failure output).
mod rip_fuzz_helpers {
    pub use rip_hbm::{RegionAllocator, RegionMode};
    pub use std::collections::HashMap;
}

const ROWS: u64 = 64;
const SEGS_PER_ROW: u64 = 2;
const OUTPUTS: usize = 4;
const PAGE_ROWS: u64 = 4;

fn alloc() -> RegionAllocator {
    RegionAllocator::new(
        RegionMode::DynamicPages {
            page_rows: PAGE_ROWS,
        },
        ROWS,
        SEGS_PER_ROW,
        OUTPUTS,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Steps: (output, write?) — writes advance the output's write slot,
    /// reads advance its read slot (only when behind the write slot).
    #[test]
    fn dynamic_allocator_invariants(
        steps in prop::collection::vec((0usize..OUTPUTS, any::<bool>()), 1..300),
    ) {
        let mut a = alloc();
        let mut write_slot = [0u64; OUTPUTS];
        let mut read_slot = [0u64; OUTPUTS];
        // Rows each output currently owns (slot -> row).
        let mut live: Vec<HashMap<u64, u64>> = vec![HashMap::new(); OUTPUTS];
        let total_pages = (ROWS / PAGE_ROWS) as usize;
        for (o, is_write) in steps {
            if is_write {
                if !a.can_accept(o, write_slot[o], 0) {
                    // Full: a write must fail cleanly.
                    prop_assert!(a.row_for_write(o, write_slot[o]).is_none());
                    continue;
                }
                let row = a.row_for_write(o, write_slot[o]).expect("accepted write");
                prop_assert!(row < ROWS, "row {row} out of bounds");
                // Reads of the same slot agree.
                prop_assert_eq!(a.row_for_read(o, write_slot[o]), row);
                live[o].insert(write_slot[o], row);
                write_slot[o] += 1;
            } else if read_slot[o] < write_slot[o] {
                live[o].remove(&read_slot[o]);
                read_slot[o] += 1;
                a.reads_advanced_to(o, read_slot[o]);
            }
            // Disjointness of rows across outputs, over live slots that
            // sit in still-held pages.
            let mut seen: HashMap<u64, usize> = HashMap::new();
            for (owner, slots) in live.iter().enumerate() {
                for (&slot, &row) in slots {
                    // Skip rows whose page was already freed (read side
                    // passed them).
                    if slot < read_slot[owner] {
                        continue;
                    }
                    if let Some(prev) = seen.insert(row, owner) {
                        prop_assert_eq!(
                            prev, owner,
                            "row {} shared by outputs {} and {}", row, prev, owner
                        );
                    }
                }
            }
            // Page conservation.
            let held: usize = (0..OUTPUTS).map(|o| a.pages_held(o)).sum();
            prop_assert_eq!(held + a.pages_free(), total_pages);
        }
    }

    /// The static allocator never exceeds its per-output region and is a
    /// pure function of (output, slot).
    #[test]
    fn static_allocator_is_pure_and_bounded(
        queries in prop::collection::vec((0usize..OUTPUTS, 0u64..10_000), 1..200),
    ) {
        let a = RegionAllocator::new(RegionMode::Static, ROWS, SEGS_PER_ROW, OUTPUTS).unwrap();
        let region = ROWS / OUTPUTS as u64;
        for (o, slot) in queries {
            let r1 = a.row_for_read(o, slot);
            let r2 = a.row_for_read(o, slot);
            prop_assert_eq!(r1, r2);
            prop_assert!(r1 >= o as u64 * region && r1 < (o as u64 + 1) * region);
        }
    }
}
