//! The statistical alternative of §3.1 Challenge 6: random packet
//! spraying over memory channels plus an output resequencing buffer
//! (\[57, 59, 62, 66\] in the paper).

use rand::Rng;
use rip_sim::rng::rng_for;
use rip_sim::stats::TimeWeighted;
use rip_traffic::Packet;
use rip_units::{DataRate, DataSize, SimTime, TimeDelta};
use serde::{Deserialize, Serialize};

/// Report of a spraying run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SprayingReport {
    /// Packets processed.
    pub packets: u64,
    /// Total data moved.
    pub data: DataSize,
    /// Delivered (in-order) aggregate rate.
    pub delivered_rate: DataRate,
    /// Memory-system peak rate (T × channel rate).
    pub peak_rate: DataRate,
    /// Throughput reduction vs peak.
    pub reduction: f64,
    /// Peak resequencing-buffer occupancy across all outputs.
    pub peak_reorder: DataSize,
    /// Time-weighted mean resequencing occupancy.
    pub mean_reorder: DataSize,
    /// Fraction of packets that completed out of order and had to wait.
    pub reordered_fraction: f64,
}

/// A shared-memory switch that sprays each packet onto a uniformly
/// random memory channel, pays the worst-case random-access time there
/// (tRCD + transfer + tRP, the paper's ≈30 ns + x), and restores packet
/// order per output in a resequencing buffer.
///
/// This is the architecture PFI is measured against in E1/E9: it loses
/// throughput to the per-packet access overhead *and* pays a reordering
/// buffer that grows with the completion-time spread.
#[derive(Debug, Clone)]
pub struct SprayingHbmSwitch {
    channels: usize,
    channel_rate: DataRate,
    access_overhead: TimeDelta,
    seed: u64,
}

impl SprayingHbmSwitch {
    /// A switch with `channels` memory channels of `channel_rate`,
    /// paying `access_overhead` (ACT+PRE) around every packet access.
    pub fn new(
        channels: usize,
        channel_rate: DataRate,
        access_overhead: TimeDelta,
        seed: u64,
    ) -> Self {
        assert!(channels > 0 && !channel_rate.is_zero());
        SprayingHbmSwitch {
            channels,
            channel_rate,
            access_overhead,
            seed,
        }
    }

    /// Peak memory rate.
    pub fn peak_rate(&self) -> DataRate {
        self.channel_rate * self.channels as u64
    }

    /// Run an arrival-ordered trace through the sprayed memory and the
    /// output resequencers.
    pub fn run(&self, packets: &[Packet], num_outputs: usize) -> SprayingReport {
        let mut rng = rng_for(self.seed, 0x5B8A);
        let mut channel_free = vec![SimTime::ZERO; self.channels];
        // Per-output sequence assignment and completion times.
        let mut next_seq = vec![0u64; num_outputs];
        // (output, seq, completion, size)
        let mut records: Vec<(usize, u64, SimTime, DataSize)> = Vec::with_capacity(packets.len());
        let mut first_arrival: Option<SimTime> = None;
        for p in packets {
            assert!(p.output < num_outputs);
            first_arrival.get_or_insert(p.arrival);
            let ch = rng.random_range(0..self.channels);
            let service = self.access_overhead + self.channel_rate.transfer_time(p.size);
            let start = channel_free[ch].max(p.arrival);
            let done = start + service;
            channel_free[ch] = done;
            let seq = next_seq[p.output];
            next_seq[p.output] += 1;
            records.push((p.output, seq, done, p.size));
        }
        let t0 = first_arrival.unwrap_or(SimTime::ZERO);

        // Resequencing: per output, the in-order departure of seq s is
        // the running max of completions over 0..=s.
        let mut per_output: Vec<Vec<(SimTime, DataSize)>> = vec![Vec::new(); num_outputs];
        for &(o, seq, done, size) in &records {
            debug_assert_eq!(per_output[o].len() as u64, seq);
            per_output[o].push((done, size));
        }
        // Occupancy events: +size at completion, −size at departure.
        let mut events: Vec<(SimTime, i64)> = Vec::with_capacity(records.len() * 2);
        let mut reordered = 0u64;
        let mut last_departure = SimTime::ZERO;
        for recs in &per_output {
            let mut running_max = SimTime::ZERO;
            for &(done, size) in recs {
                running_max = running_max.max(done);
                if running_max > done {
                    reordered += 1;
                }
                events.push((done, size.bytes() as i64));
                events.push((running_max, -(size.bytes() as i64)));
                last_departure = last_departure.max(running_max);
            }
        }
        // Sweep: at equal times, apply departures before arrivals so a
        // packet that departs the instant it completes never counts.
        events.sort_by_key(|&(t, delta)| (t, delta));
        let mut occ = 0i64;
        let mut peak = 0i64;
        let mut tw = TimeWeighted::new(t0, 0.0);
        for &(t, delta) in &events {
            occ += delta;
            peak = peak.max(occ);
            tw.update(t.max(t0), occ as f64);
        }
        debug_assert_eq!(occ, 0, "resequencing buffer must drain");
        let mean_occ = if events.is_empty() {
            0.0
        } else {
            tw.average(last_departure.max(t0))
        };

        let data: DataSize = packets.iter().map(|p| p.size).sum();
        let span = last_departure.saturating_since(t0);
        let delivered = if span.is_zero() {
            DataRate::ZERO
        } else {
            DataRate::from_bps(
                u64::try_from(
                    data.bits() as u128 * rip_units::PS_PER_S as u128 / span.as_ps() as u128,
                )
                .expect("rate overflow"),
            )
        };
        let peak_rate = self.peak_rate();
        SprayingReport {
            packets: packets.len() as u64,
            data,
            delivered_rate: delivered,
            peak_rate,
            reduction: peak_rate.bps() as f64 / delivered.bps().max(1) as f64,
            peak_reorder: DataSize::from_bytes(peak.max(0) as u64),
            mean_reorder: DataSize::from_bytes(mean_occ.max(0.0) as u64),
            reordered_fraction: if packets.is_empty() {
                0.0
            } else {
                reordered as f64 / packets.len() as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Saturating trace: packets arrive faster than the memory can
    /// serve, spread over outputs.
    fn saturating_trace(n: u64, bytes: u64, outputs: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                Packet::new(
                    i,
                    (i % 4) as usize,
                    (i % outputs as u64) as usize,
                    DataSize::from_bytes(bytes),
                    SimTime::from_ps(i * 100), // essentially simultaneous
                )
            })
            .collect()
    }

    #[test]
    fn reduction_matches_worst_case_math_for_64b() {
        // 4 channels of 80 GB/s, 30 ns overhead, 64 B packets:
        // service = 30.8 ns vs transfer 0.8 ns -> reduction ~38.5x.
        let sw = SprayingHbmSwitch::new(4, DataRate::from_gbps(640), TimeDelta::from_ns(30), 1);
        let r = sw.run(&saturating_trace(4000, 64, 4), 4);
        // Random channel choice leaves some channels idle at times, so
        // the measured reduction is at least the deterministic 38.5.
        assert!(
            r.reduction > 35.0 && r.reduction < 55.0,
            "reduction {}",
            r.reduction
        );
    }

    #[test]
    fn reduction_for_1500b_packets() {
        let sw = SprayingHbmSwitch::new(4, DataRate::from_gbps(640), TimeDelta::from_ns(30), 1);
        let r = sw.run(&saturating_trace(4000, 1500, 4), 4);
        assert!(
            r.reduction > 2.4 && r.reduction < 4.0,
            "reduction {}",
            r.reduction
        );
    }

    #[test]
    fn resequencing_buffer_is_nonempty_under_spraying() {
        let sw = SprayingHbmSwitch::new(8, DataRate::from_gbps(640), TimeDelta::from_ns(30), 2);
        let r = sw.run(&saturating_trace(8000, 512, 4), 4);
        assert!(r.peak_reorder.bytes() > 0, "no reordering observed");
        assert!(r.reordered_fraction > 0.1, "{}", r.reordered_fraction);
        assert!(r.mean_reorder.bytes() <= r.peak_reorder.bytes());
    }

    #[test]
    fn single_channel_never_reorders() {
        // One channel serializes everything: completions are in arrival
        // order, so per-output sequences complete in order too.
        let sw = SprayingHbmSwitch::new(1, DataRate::from_gbps(640), TimeDelta::from_ns(30), 3);
        let r = sw.run(&saturating_trace(1000, 256, 4), 4);
        assert_eq!(r.reordered_fraction, 0.0);
        assert_eq!(r.peak_reorder, DataSize::ZERO);
    }

    #[test]
    fn empty_trace_is_safe() {
        let sw = SprayingHbmSwitch::new(2, DataRate::from_gbps(10), TimeDelta::from_ns(30), 4);
        let r = sw.run(&[], 4);
        assert_eq!(r.packets, 0);
        assert_eq!(r.delivered_rate, DataRate::ZERO);
    }

    #[test]
    fn determinism_per_seed() {
        let sw = SprayingHbmSwitch::new(4, DataRate::from_gbps(640), TimeDelta::from_ns(30), 7);
        let trace = saturating_trace(2000, 300, 4);
        let a = sw.run(&trace, 4);
        let b = sw.run(&trace, 4);
        assert_eq!(a.peak_reorder, b.peak_reorder);
        assert_eq!(a.delivered_rate, b.delivered_rate);
    }
}
