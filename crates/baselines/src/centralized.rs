//! Design 1: the single centralized switch (§2.1).

use rip_traffic::Packet;
use rip_units::{DataRate, DataSize, SimTime, TimeDelta};
use serde::{Deserialize, Serialize};

/// Outcome of running a trace through the centralized switch.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CentralizedReport {
    /// Packets offered.
    pub offered: u64,
    /// Packets delivered (the rest were dropped at the full ingress queue).
    pub delivered: u64,
    /// Data delivered.
    pub data: DataSize,
    /// Offered aggregate rate.
    pub offered_rate: DataRate,
    /// Delivered aggregate rate.
    pub delivered_rate: DataRate,
    /// Fraction of offered packets dropped.
    pub loss_fraction: f64,
    /// Mean queueing delay of delivered packets.
    pub mean_delay: TimeDelta,
}

/// Design 1 — a single centralized switch fabric in front of one shared
/// memory of bounded aggregate bandwidth.
///
/// Every packet must be written into and read out of the central memory,
/// so the memory bus serves `2 × size` per packet; deliverable
/// throughput is capped at half the memory bandwidth regardless of the
/// traffic pattern (Challenge 1: "prohibitive switching rates as well as
/// memory access rates"). A bounded ingress queue gives loss behaviour.
#[derive(Debug, Clone)]
pub struct CentralizedSwitch {
    memory_bandwidth: DataRate,
    /// Ingress queue bound (bytes); arrivals beyond it are dropped.
    queue_limit: DataSize,
    /// When the memory bus frees up.
    bus_free: SimTime,
    /// Bytes currently queued for the bus.
    queued: DataSize,
    /// Lazily drained in-flight completions (time, size).
    in_flight: Vec<(SimTime, DataSize)>,
}

impl CentralizedSwitch {
    /// A centralized switch with the given total memory bandwidth and
    /// ingress queue bound.
    pub fn new(memory_bandwidth: DataRate, queue_limit: DataSize) -> Self {
        assert!(!memory_bandwidth.is_zero());
        CentralizedSwitch {
            memory_bandwidth,
            queue_limit,
            bus_free: SimTime::ZERO,
            queued: DataSize::ZERO,
            in_flight: Vec::new(),
        }
    }

    /// The maximum deliverable aggregate rate (half the memory bandwidth:
    /// every bit crosses the memory twice).
    pub fn capacity(&self) -> DataRate {
        self.memory_bandwidth / 2
    }

    /// Run an arrival-ordered trace. Packets arriving to a full queue
    /// are dropped.
    pub fn run(&mut self, packets: &[Packet]) -> CentralizedReport {
        let mut delivered = 0u64;
        let mut data = DataSize::ZERO;
        let mut delay_total_ps: u128 = 0;
        let mut last_departure = SimTime::ZERO;
        let mut first_arrival: Option<SimTime> = None;
        for p in packets {
            first_arrival.get_or_insert(p.arrival);
            // Drain completions up to this arrival.
            let now = p.arrival;
            let mut drained = DataSize::ZERO;
            self.in_flight.retain(|&(t, s)| {
                if t <= now {
                    drained += s;
                    false
                } else {
                    true
                }
            });
            self.queued = self.queued.saturating_sub(drained);
            if self.queued + p.size > self.queue_limit {
                continue; // drop
            }
            // Write + read across the shared memory: 2x the packet size.
            let service = self.memory_bandwidth.transfer_time(p.size * 2);
            let start = self.bus_free.max(p.arrival);
            let done = start + service;
            self.bus_free = done;
            self.queued += p.size;
            self.in_flight.push((done, p.size));
            delivered += 1;
            data += p.size;
            delay_total_ps += done.since(p.arrival).as_ps() as u128;
            last_departure = last_departure.max(done);
        }
        let offered: u64 = packets.len() as u64;
        let first = first_arrival.unwrap_or(SimTime::ZERO);
        let span = last_departure.saturating_since(first);
        let offered_bits: u64 = packets.iter().map(|p| p.size.bits()).sum();
        let offered_span = packets
            .last()
            .map(|p| p.arrival.saturating_since(first))
            .unwrap_or(TimeDelta::ZERO);
        let rate_of = |bits: u64, dt: TimeDelta| {
            if dt.is_zero() {
                DataRate::ZERO
            } else {
                DataRate::from_bps(
                    u64::try_from(bits as u128 * rip_units::PS_PER_S as u128 / dt.as_ps() as u128)
                        .expect("rate overflow"),
                )
            }
        };
        CentralizedReport {
            offered,
            delivered,
            data,
            offered_rate: rate_of(offered_bits, offered_span),
            delivered_rate: rate_of(data.bits(), span),
            loss_fraction: if offered == 0 {
                0.0
            } else {
                1.0 - delivered as f64 / offered as f64
            },
            mean_delay: if delivered == 0 {
                TimeDelta::ZERO
            } else {
                TimeDelta::from_ps((delay_total_ps / delivered as u128) as u64)
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(n: u64, gap_ns: u64, bytes: u64) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                Packet::new(
                    i,
                    (i % 4) as usize,
                    ((i + 1) % 4) as usize,
                    DataSize::from_bytes(bytes),
                    SimTime::from_ns(i * gap_ns),
                )
            })
            .collect()
    }

    #[test]
    fn capacity_is_half_memory_bandwidth() {
        let sw = CentralizedSwitch::new(DataRate::from_gbps(100), DataSize::from_mib(1));
        assert_eq!(sw.capacity(), DataRate::from_gbps(50));
    }

    #[test]
    fn under_capacity_no_loss() {
        // Offered 40 Gb/s vs capacity 50 Gb/s.
        let mut sw = CentralizedSwitch::new(DataRate::from_gbps(100), DataSize::from_mib(1));
        let r = sw.run(&trace(1000, 200, 1000)); // 8000 bits / 200 ns = 40 Gb/s
        assert_eq!(r.delivered, 1000);
        assert_eq!(r.loss_fraction, 0.0);
    }

    #[test]
    fn over_capacity_saturates_and_drops() {
        // Offered 80 Gb/s vs capacity 50 Gb/s with a small queue.
        let mut sw = CentralizedSwitch::new(DataRate::from_gbps(100), DataSize::from_bytes(4000));
        let r = sw.run(&trace(10_000, 100, 1000));
        assert!(r.loss_fraction > 0.3, "loss {}", r.loss_fraction);
        // Delivered rate pinned at the capacity.
        assert!(
            (r.delivered_rate.gbps() - 50.0).abs() < 2.0,
            "delivered {}",
            r.delivered_rate.gbps()
        );
    }

    #[test]
    fn empty_trace_is_safe() {
        let mut sw = CentralizedSwitch::new(DataRate::from_gbps(10), DataSize::from_mib(1));
        let r = sw.run(&[]);
        assert_eq!(r.offered, 0);
        assert_eq!(r.delivered, 0);
        assert_eq!(r.loss_fraction, 0.0);
    }
}
