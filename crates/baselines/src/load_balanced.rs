//! Demand-oblivious per-packet load-balancing baselines (§2.1 Design 3,
//! citing \[31, 38, 47, 48\]): the two-stage load-balanced router and the
//! parallel packet switch. Both achieve full throughput for admissible
//! traffic, but only by (a) electronically load-balancing every packet
//! and (b) resequencing at the outputs — the machinery the SPS split
//! makes unnecessary, at the price of extra OEO stages.

use std::collections::HashMap;

use rip_traffic::Packet;
use rip_units::{DataRate, DataSize, SimTime, TimeDelta};
use serde::{Deserialize, Serialize};

/// Outcome of a load-balanced / PPS run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BalancedReport {
    /// Packets carried.
    pub packets: u64,
    /// Data carried.
    pub data: DataSize,
    /// Delivered (in-order) aggregate rate.
    pub delivered_rate: DataRate,
    /// Mean in-order departure delay.
    pub mean_delay: TimeDelta,
    /// Peak resequencing-buffer occupancy across outputs.
    pub peak_reorder: DataSize,
    /// Fraction of packets that completed out of order.
    pub reordered_fraction: f64,
    /// Electronic stages each packet traversed (OEO pairs paid).
    pub oeo_stages: u32,
}

/// The two-stage load-balanced router (\[38\]): stage 1 spreads packets
/// from each input round-robin over the `N` intermediate ports
/// regardless of destination; stage 2 switches them to the real output.
/// Each internal link `(i → j)` runs at `R/N` (the two static meshes),
/// and outputs restore packet order with a resequencer.
#[derive(Debug, Clone)]
pub struct LoadBalancedRouter {
    n: usize,
    port_rate: DataRate,
}

impl LoadBalancedRouter {
    /// An `n × n` load-balanced router with external port rate `rate`.
    pub fn new(n: usize, rate: DataRate) -> Self {
        assert!(n > 0 && !rate.is_zero());
        LoadBalancedRouter { n, port_rate: rate }
    }

    /// Run an arrival-ordered trace; packets `input`/`output` must be
    /// `< n`.
    pub fn run(&self, packets: &[Packet]) -> BalancedReport {
        let n = self.n;
        let link_rate = self.port_rate / n as u64;
        // Stage-1 link (i, j) and stage-2 link (j, k) FIFO frontiers.
        let mut s1_free = vec![SimTime::ZERO; n * n];
        let mut s2_free = vec![SimTime::ZERO; n * n];
        // Round-robin spreader per input — the per-packet electronic
        // load balancing the paper wants to avoid.
        let mut rr = vec![0usize; n];
        // Output line frontiers.
        let mut out_free = vec![SimTime::ZERO; n];
        // Per-output completion records for resequencing.
        let mut per_output: Vec<Vec<(SimTime, DataSize)>> = vec![Vec::new(); n];
        for p in packets {
            assert!(p.input < n && p.output < n);
            let j = rr[p.input];
            rr[p.input] = (rr[p.input] + 1) % n;
            let t1 = link_rate.transfer_time(p.size);
            let l1 = p.input * n + j;
            let s1_done = s1_free[l1].max(p.arrival) + t1;
            s1_free[l1] = s1_done;
            let l2 = j * n + p.output;
            let s2_done = s2_free[l2].max(s1_done) + t1;
            s2_free[l2] = s2_done;
            per_output[p.output].push((s2_done, p.size));
        }
        self.resequence_and_report(packets, &mut per_output, &mut out_free, 2)
    }

    /// Resequencing pass shared with the PPS: in-order departure of the
    /// `s`-th packet of an output is the running max of completions,
    /// then serialization on the output line.
    fn resequence_and_report(
        &self,
        packets: &[Packet],
        per_output: &mut [Vec<(SimTime, DataSize)>],
        out_free: &mut [SimTime],
        oeo_stages: u32,
    ) -> BalancedReport {
        let mut events: Vec<(SimTime, i64)> = Vec::new();
        let mut reordered = 0u64;
        let mut total_delay_ps: u128 = 0;
        let mut last_dep = SimTime::ZERO;
        let mut delays: HashMap<usize, ()> = HashMap::new();
        let _ = &mut delays;
        // Reconstruct arrival times per output in offer order.
        let mut arrivals: Vec<Vec<SimTime>> = vec![Vec::new(); out_free.len()];
        for p in packets {
            arrivals[p.output].push(p.arrival);
        }
        for (o, recs) in per_output.iter().enumerate() {
            let mut running_max = SimTime::ZERO;
            for (s, &(done, size)) in recs.iter().enumerate() {
                running_max = running_max.max(done);
                if running_max > done {
                    reordered += 1;
                }
                // In-order head-of-line departure + output serialization.
                let start = running_max.max(out_free[o]);
                let dep = start + self.port_rate.transfer_time(size);
                out_free[o] = dep;
                events.push((done, size.bytes() as i64));
                events.push((start, -(size.bytes() as i64)));
                total_delay_ps += dep.since(arrivals[o][s]).as_ps() as u128;
                last_dep = last_dep.max(dep);
            }
        }
        events.sort_by_key(|&(t, d)| (t, d));
        let mut occ = 0i64;
        let mut peak = 0i64;
        for &(_, d) in &events {
            occ += d;
            peak = peak.max(occ);
        }
        let data: DataSize = packets.iter().map(|p| p.size).sum();
        let first = packets.first().map(|p| p.arrival).unwrap_or(SimTime::ZERO);
        let span = last_dep.saturating_since(first);
        let delivered_rate = if span.is_zero() {
            DataRate::ZERO
        } else {
            DataRate::from_bps(
                u64::try_from(
                    data.bits() as u128 * rip_units::PS_PER_S as u128 / span.as_ps() as u128,
                )
                .expect("rate overflow"),
            )
        };
        BalancedReport {
            packets: packets.len() as u64,
            data,
            delivered_rate,
            mean_delay: if packets.is_empty() {
                TimeDelta::ZERO
            } else {
                TimeDelta::from_ps((total_delay_ps / packets.len() as u128) as u64)
            },
            peak_reorder: DataSize::from_bytes(peak.max(0) as u64),
            reordered_fraction: if packets.is_empty() {
                0.0
            } else {
                reordered as f64 / packets.len() as f64
            },
            oeo_stages,
        }
    }
}

/// The parallel packet switch (\[31\]): `H` slower switch planes, each an
/// ideal OQ switch at rate `speedup × R / H`; a dispatcher spreads each
/// input's packets round-robin over the planes and outputs resequence.
#[derive(Debug, Clone)]
pub struct ParallelPacketSwitch {
    n: usize,
    planes: usize,
    port_rate: DataRate,
    /// Internal speedup: plane port rate = `speedup × R / H`.
    pub speedup: f64,
}

impl ParallelPacketSwitch {
    /// An `n × n` PPS over `planes` planes at external rate `rate`.
    pub fn new(n: usize, planes: usize, rate: DataRate, speedup: f64) -> Self {
        assert!(n > 0 && planes > 0 && !rate.is_zero() && speedup >= 1.0);
        ParallelPacketSwitch {
            n,
            planes,
            port_rate: rate,
            speedup,
        }
    }

    /// Run an arrival-ordered trace through the planes + resequencers.
    pub fn run(&self, packets: &[Packet]) -> BalancedReport {
        let plane_rate = (self.port_rate / self.planes as u64).scale(self.speedup);
        // Each plane is an ideal OQ switch: per-(plane, output) line.
        let mut plane_out_free = vec![SimTime::ZERO; self.planes * self.n];
        let mut rr = vec![0usize; self.n];
        let mut per_output: Vec<Vec<(SimTime, DataSize)>> = vec![Vec::new(); self.n];
        for p in packets {
            assert!(p.input < self.n && p.output < self.n);
            let plane = rr[p.input];
            rr[p.input] = (rr[p.input] + 1) % self.planes;
            let idx = plane * self.n + p.output;
            let done = plane_out_free[idx].max(p.arrival) + plane_rate.transfer_time(p.size);
            plane_out_free[idx] = done;
            per_output[p.output].push((done, p.size));
        }
        let shared = LoadBalancedRouter::new(self.n, self.port_rate);
        let mut out_free = vec![SimTime::ZERO; self.n];
        shared.resequence_and_report(packets, &mut per_output, &mut out_free, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rip_sim::rng::rng_for;

    /// Admissible uniform trace at `load` on `n` ports of `rate`.
    fn uniform_trace(n: usize, rate: DataRate, load: f64, count: u64, seed: u64) -> Vec<Packet> {
        let mut rng = rng_for(seed, 0x1B);
        let size = DataSize::from_bytes(1000);
        let gap_ps = (size.bits() as f64 * 1e12 / (rate.bps() as f64 * load)) as u64;
        let mut t = vec![SimTime::ZERO; n];
        let mut out = Vec::new();
        for i in 0..count {
            let input = (i % n as u64) as usize;
            t[input] += TimeDelta::from_ps(gap_ps);
            out.push(Packet::new(
                i,
                input,
                rng.random_range(0..n),
                size,
                t[input],
            ));
        }
        out.sort_by_key(|p| (p.arrival, p.input, p.id));
        out
    }

    #[test]
    fn lb_router_sustains_admissible_load() {
        let rate = DataRate::from_gbps(100);
        let lb = LoadBalancedRouter::new(4, rate);
        let trace = uniform_trace(4, rate, 0.9, 8000, 1);
        let r = lb.run(&trace);
        // Delivered rate ~ offered aggregate (0.9 x 4 x 100 Gb/s).
        assert!(
            r.delivered_rate.gbps() > 0.8 * 0.9 * 400.0,
            "{}",
            r.delivered_rate
        );
        assert_eq!(r.oeo_stages, 2);
    }

    #[test]
    fn lb_router_reorders_and_buffers() {
        let rate = DataRate::from_gbps(100);
        let lb = LoadBalancedRouter::new(8, rate);
        let trace = uniform_trace(8, rate, 0.95, 16_000, 2);
        let r = lb.run(&trace);
        assert!(r.reordered_fraction > 0.05, "{}", r.reordered_fraction);
        assert!(r.peak_reorder.bytes() > 0);
    }

    #[test]
    fn lb_delay_exceeds_ideal_oq() {
        let rate = DataRate::from_gbps(100);
        let n = 4;
        let trace = uniform_trace(n, rate, 0.7, 4000, 3);
        let lb = LoadBalancedRouter::new(n, rate).run(&trace);
        let mut oq = crate::IdealOqSwitch::new(n, rate);
        oq.run(&trace);
        let oq_delay = oq.mean_delay(&trace);
        assert!(
            lb.mean_delay > oq_delay,
            "LB {} !> OQ {}",
            lb.mean_delay,
            oq_delay
        );
    }

    #[test]
    fn pps_throughput_improves_with_speedup() {
        let rate = DataRate::from_gbps(100);
        let n = 4;
        let trace = uniform_trace(n, rate, 0.95, 12_000, 4);
        let s1 = ParallelPacketSwitch::new(n, 4, rate, 1.0).run(&trace);
        let s2 = ParallelPacketSwitch::new(n, 4, rate, 2.0).run(&trace);
        assert!(s2.mean_delay <= s1.mean_delay);
        assert!(s2.delivered_rate.bps() >= s1.delivered_rate.bps());
        assert_eq!(s2.oeo_stages, 3);
    }

    #[test]
    fn pps_single_plane_is_in_order() {
        let rate = DataRate::from_gbps(100);
        let trace = uniform_trace(4, rate, 0.8, 2000, 5);
        let r = ParallelPacketSwitch::new(4, 1, rate, 1.0).run(&trace);
        assert_eq!(r.reordered_fraction, 0.0);
    }

    #[test]
    fn empty_trace_is_safe() {
        let rate = DataRate::from_gbps(10);
        let r = LoadBalancedRouter::new(2, rate).run(&[]);
        assert_eq!(r.packets, 0);
        let r = ParallelPacketSwitch::new(2, 2, rate, 1.0).run(&[]);
        assert_eq!(r.packets, 0);
    }
}
