//! Baseline router architectures the paper argues against (§2.1 Designs
//! 1–3, §3.1 Challenge 6), plus the ideal output-queued reference.
//!
//! * [`IdealOqSwitch`] — the "holy grail" ideal output-queued
//!   shared-memory switch with unbounded memory bandwidth. Serves two
//!   roles: the throughput/work-conservation reference, and the shadow
//!   switch in the OQ-mimicking experiment (E4).
//! * [`CentralizedSwitch`] — Design 1: one switch fabric behind one
//!   memory of bounded aggregate bandwidth; cannot keep up at petabit
//!   rates (Challenge 1).
//! * [`MeshFabric`] — Design 2: a √H×√H mesh of smaller switches with XY
//!   routing; guaranteed throughput collapses to ≈2/(√H) of capacity —
//!   20 % for a 10×10 mesh (Challenge 2, \[61\]).
//! * [`ThreeStageDesign`] / [`DesignPoint`] — Design 3: Clos /
//!   load-balanced organizations with three electronic stages and three
//!   OEO conversions per packet (Challenge 3).
//! * [`LoadBalancedRouter`] / [`ParallelPacketSwitch`] — the
//!   demand-oblivious per-packet balancing designs (\[31, 38, 47, 48\]):
//!   full throughput, but per-packet electronic balancing plus output
//!   resequencing, and extra OEO stages.
//! * [`SprayingHbmSwitch`] — the statistical alternative of §3.1: spray
//!   packets randomly over memory channels at worst-case access times
//!   and re-sequence at the outputs; loses throughput *and* needs a
//!   large reordering buffer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod centralized;
mod design_points;
mod load_balanced;
mod mesh;
mod oq;
mod spraying;

pub use centralized::{CentralizedReport, CentralizedSwitch};
pub use design_points::{DesignPoint, ThreeStageDesign};
pub use load_balanced::{BalancedReport, LoadBalancedRouter, ParallelPacketSwitch};
pub use mesh::MeshFabric;
pub use oq::{Departure, IdealOqSwitch};
pub use spraying::{SprayingHbmSwitch, SprayingReport};
