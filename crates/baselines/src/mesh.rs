//! Design 2: the √H×√H mesh of smaller switches (§2.1 Challenge 2).

use rip_traffic::TrafficMatrix;
use serde::{Deserialize, Serialize};

/// A `k × k` mesh of switch chiplets with dimension-ordered (XY)
/// routing.
///
/// Each node terminates one external port of normalized rate 1; every
/// mesh link has capacity `link_capacity` (in the same units). Demands
/// route X-first then Y; the achievable throughput factor of a traffic
/// matrix is `link_capacity / max-link-load` (fluid model), capped at 1.
///
/// The paper's point (Challenge 2, citing \[61\]): for a 10×10 mesh the
/// guaranteed factor over admissible matrices is ≈20 % — 80 % of the
/// capacity and power is spent on pass-through traffic.
///
/// ```
/// use rip_baselines::MeshFabric;
/// let mesh = MeshFabric::new(10, 1.0);
/// assert_eq!(mesh.worst_case_bound(), 0.2); // the paper's 20%
/// let tm = mesh.bisection_tm();
/// assert!((mesh.throughput_factor(&tm) - 0.2).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeshFabric {
    k: usize,
    link_capacity: f64,
}

impl MeshFabric {
    /// A `k × k` mesh with the given per-link capacity (external port
    /// rate = 1.0).
    pub fn new(k: usize, link_capacity: f64) -> Self {
        assert!(k >= 2, "mesh needs at least 2x2");
        assert!(link_capacity > 0.0);
        MeshFabric { k, link_capacity }
    }

    /// Mesh side length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of nodes `k²`.
    pub fn nodes(&self) -> usize {
        self.k * self.k
    }

    fn coords(&self, node: usize) -> (usize, usize) {
        (node % self.k, node / self.k)
    }

    /// Directed-link index space: for each node, 4 outgoing directions
    /// (0=+x, 1=−x, 2=+y, 3=−y); links off the edge are unused.
    fn link_index(&self, node: usize, dir: usize) -> usize {
        node * 4 + dir
    }

    /// The XY route from `src` to `dst` as a list of directed link
    /// indices (empty if `src == dst`).
    pub fn route_xy(&self, src: usize, dst: usize) -> Vec<usize> {
        let (mut x, mut y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut links = Vec::new();
        while x != dx {
            let (dir, nx) = if dx > x { (0, x + 1) } else { (1, x - 1) };
            links.push(self.link_index(y * self.k + x, dir));
            x = nx;
        }
        while y != dy {
            let (dir, ny) = if dy > y { (2, y + 1) } else { (3, y - 1) };
            links.push(self.link_index(y * self.k + x, dir));
            y = ny;
        }
        links
    }

    /// Hop count of the XY route.
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        let (x, y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        x.abs_diff(dx) + y.abs_diff(dy)
    }

    /// Per-directed-link loads when routing `tm` (node-to-node demands,
    /// normalized to external port rate) with XY routing.
    pub fn link_loads(&self, tm: &TrafficMatrix) -> Vec<f64> {
        assert_eq!(tm.n(), self.nodes(), "TM size must match node count");
        let mut loads = vec![0.0; self.nodes() * 4];
        for s in 0..self.nodes() {
            for d in 0..self.nodes() {
                let dem = tm.demand(s, d);
                if dem > 0.0 {
                    for l in self.route_xy(s, d) {
                        loads[l] += dem;
                    }
                }
            }
        }
        loads
    }

    /// Fluid throughput factor for `tm`: every demand can be served at
    /// this fraction without any link exceeding capacity (≤ 1.0).
    pub fn throughput_factor(&self, tm: &TrafficMatrix) -> f64 {
        let max_load = self.link_loads(tm).into_iter().fold(0.0f64, f64::max);
        if max_load == 0.0 {
            1.0
        } else {
            (self.link_capacity / max_load).min(1.0)
        }
    }

    /// The adversarial admissible matrix that saturates the vertical
    /// bisection: every node in the left half sends its full rate to the
    /// mirror node in the right half (a permutation, hence admissible).
    pub fn bisection_tm(&self) -> TrafficMatrix {
        let n = self.nodes();
        let k = self.k;
        let perm: Vec<usize> = (0..n)
            .map(|node| {
                let (x, y) = self.coords(node);
                // Mirror across the vertical cut.
                let mx = k - 1 - x;
                y * k + mx
            })
            .collect();
        TrafficMatrix::permutation(&perm, 1.0).expect("mirror map is a permutation")
    }

    /// The closed-form worst-case (guaranteed) throughput bound from the
    /// bisection argument: `2k` directed links of capacity `c` cross the
    /// vertical cut, while up to `k²/2` external ports (rate 1) may send
    /// across it, giving `Θ = 2k·c / (k²/2 · 1) = 4c/k` — wait, XY
    /// routing crosses the cut on exactly `k` rightward links for
    /// left→right demands, so the one-directional bound is `k·c/(k²/2)`
    /// `= 2c/k`. For k = 10, c = 1 this is the paper's 20 %.
    pub fn worst_case_bound(&self) -> f64 {
        (2.0 * self.link_capacity / self.k as f64).min(1.0)
    }

    /// Mean XY hop count under a uniform traffic matrix — the
    /// pass-through multiplier that wastes capacity and power.
    pub fn mean_hops_uniform(&self) -> f64 {
        let n = self.nodes();
        let total: usize = (0..n)
            .flat_map(|s| (0..n).map(move |d| (s, d)))
            .map(|(s, d)| self.hops(s, d))
            .sum();
        total as f64 / (n * n) as f64
    }

    /// Fraction of total switch/link work spent on pass-through
    /// (non-terminating) hops under uniform traffic: `1 − 1/mean_hops`.
    pub fn pass_through_fraction(&self) -> f64 {
        let h = self.mean_hops_uniform();
        if h <= 1.0 {
            0.0
        } else {
            1.0 - 1.0 / h
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_route_shape() {
        let m = MeshFabric::new(4, 1.0);
        // (0,0) -> (2,1): two +x hops then one +y hop.
        let src = 0;
        let dst = 4 + 2;
        let route = m.route_xy(src, dst);
        assert_eq!(route.len(), 3);
        assert_eq!(m.hops(src, dst), 3);
        assert!(m.route_xy(5, 5).is_empty());
    }

    #[test]
    fn paper_20_percent_for_10x10() {
        let m = MeshFabric::new(10, 1.0);
        // Closed-form bound.
        assert!((m.worst_case_bound() - 0.2).abs() < 1e-12);
        // The explicit adversarial TM achieves (at most) the bound.
        let tm = m.bisection_tm();
        assert!(tm.is_admissible());
        let factor = m.throughput_factor(&tm);
        assert!(
            (factor - 0.2).abs() < 0.05,
            "measured worst-case factor {factor}"
        );
    }

    #[test]
    fn uniform_traffic_does_better_than_worst_case() {
        let m = MeshFabric::new(10, 1.0);
        let tm = TrafficMatrix::uniform(100, 1.0);
        assert!(m.throughput_factor(&tm) > m.worst_case_bound());
    }

    #[test]
    fn bisection_tm_crosses_the_cut() {
        let m = MeshFabric::new(4, 1.0);
        let tm = m.bisection_tm();
        // Node (0, y) sends to (3, y).
        assert_eq!(tm.demand(0, 3), 1.0);
        assert_eq!(tm.demand(4, 7), 1.0);
        // Rightward cut links between x=1 and x=2 carry k=4 nodes' x2
        // demands each... verify max link load is k/2 = 2 per crossing
        // link row: each row has 2 left nodes crossing on 1 link.
        let loads = m.link_loads(&tm);
        let max = loads.into_iter().fold(0.0f64, f64::max);
        assert!((max - 2.0).abs() < 1e-12, "max load {max}");
        assert!((m.throughput_factor(&tm) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_hops_grows_with_k() {
        let m4 = MeshFabric::new(4, 1.0);
        let m10 = MeshFabric::new(10, 1.0);
        assert!(m10.mean_hops_uniform() > m4.mean_hops_uniform());
        // k x k mesh mean hop distance = 2*(k^2-1)/(3k) ~ 2k/3.
        let expect = 2.0 * (100.0 - 1.0) / 30.0;
        assert!((m10.mean_hops_uniform() - expect).abs() < 1e-9);
        // Pass-through work dominates for k = 10 (the paper's "waste").
        assert!(m10.pass_through_fraction() > 0.8);
    }

    #[test]
    #[should_panic(expected = "TM size")]
    fn tm_size_mismatch_panics() {
        let m = MeshFabric::new(4, 1.0);
        m.link_loads(&TrafficMatrix::uniform(4, 1.0));
    }
}
