//! The §2.1 design space: OEO stages, guaranteed throughput and
//! conversion power of Designs 1–4.

use rip_units::{DataRate, Energy, Power};
use serde::{Deserialize, Serialize};

use crate::mesh::MeshFabric;

/// Design 3 — a three-stage Clos / load-balanced organization.
///
/// Each packet crosses three electronic stages separated by optics:
/// three O/E + E/O conversion pairs (Challenge 3), three times the
/// conversion power of SPS, and per-packet electronic load balancing
/// plus output reordering buffers — the machinery SPS exists to avoid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreeStageDesign {
    /// Number of electronic stages (3 for a Clos / load-balanced router).
    pub stages: usize,
}

impl ThreeStageDesign {
    /// The canonical three-stage organization.
    pub fn clos() -> Self {
        ThreeStageDesign { stages: 3 }
    }

    /// OEO conversion pairs per packet (= electronic stages).
    pub fn oeo_conversions(&self) -> usize {
        self.stages
    }

    /// Total OEO conversion power at `io_rate` with `energy` per
    /// conversion pair.
    pub fn oeo_power(&self, io_rate: DataRate, energy: Energy) -> Power {
        energy.power_at(io_rate) * self.stages as u64
    }
}

/// One point in the §2.1 design space, for side-by-side comparison
/// tables (experiment E7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DesignPoint {
    /// Design 1: single centralized switch fabric + memory.
    Centralized,
    /// Design 2: `k × k` mesh of smaller switches.
    Mesh {
        /// Mesh side length.
        k: usize,
    },
    /// Design 3: three-stage Clos / load-balanced router.
    ThreeStage,
    /// Design 4: the paper's Split-Parallel Switch.
    Sps,
}

impl DesignPoint {
    /// Human-readable name.
    pub fn name(&self) -> String {
        match self {
            DesignPoint::Centralized => "Design 1: centralized".into(),
            DesignPoint::Mesh { k } => format!("Design 2: {k}x{k} mesh"),
            DesignPoint::ThreeStage => "Design 3: three-stage Clos/LB".into(),
            DesignPoint::Sps => "Design 4: SPS (this paper)".into(),
        }
    }

    /// OEO conversion pairs each packet pays.
    pub fn oeo_conversions(&self) -> f64 {
        match self {
            // A centralized fabric also converts once in, once out.
            DesignPoint::Centralized => 1.0,
            // Mesh: every hop enters and leaves a chiplet over optics;
            // under uniform traffic the mean XY hop count applies.
            DesignPoint::Mesh { k } => MeshFabric::new(*k, 1.0).mean_hops_uniform().max(1.0),
            DesignPoint::ThreeStage => 3.0,
            DesignPoint::Sps => 1.0,
        }
    }

    /// Guaranteed throughput fraction over admissible traffic (fluid
    /// model; `memory_limited` expresses whether a single memory caps
    /// the design below line rate — for the comparison we normalize the
    /// centralized design's memory to half of what is needed, as at
    /// petabit rates no single memory system keeps up, Challenge 1).
    pub fn guaranteed_throughput(&self) -> f64 {
        match self {
            DesignPoint::Centralized => 0.5,
            DesignPoint::Mesh { k } => MeshFabric::new(*k, 1.0).worst_case_bound(),
            // Load-balanced / PPS organizations guarantee full throughput.
            DesignPoint::ThreeStage => 1.0,
            // SPS with PFI: 100 % for admissible traffic (Design 6),
            // under hashed (even) fiber loads.
            DesignPoint::Sps => 1.0,
        }
    }

    /// Conversion power at `io_rate`, with `energy` per OEO pair.
    pub fn oeo_power(&self, io_rate: DataRate, energy: Energy) -> Power {
        energy.power_at(io_rate) * self.oeo_conversions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_stage_triples_conversion_power() {
        let d = ThreeStageDesign::clos();
        assert_eq!(d.oeo_conversions(), 3);
        let io = DataRate::from_gbps(81_920);
        let e = Energy::from_pj_per_bit(1.15);
        let p3 = d.oeo_power(io, e);
        let p1 = e.power_at(io);
        assert!((p3.watts() / p1.watts() - 3.0).abs() < 1e-9);
        // ~283 W vs ~94 W per HBM-switch-equivalent.
        assert!((p3.watts() - 282.6).abs() < 1.0, "{}", p3.watts());
    }

    #[test]
    fn design_space_ordering() {
        let io = DataRate::from_tbps(655);
        let e = Energy::from_pj_per_bit(1.15);
        let sps = DesignPoint::Sps;
        let clos = DesignPoint::ThreeStage;
        let mesh = DesignPoint::Mesh { k: 10 };
        let central = DesignPoint::Centralized;
        // SPS pays the fewest conversions.
        assert!(sps.oeo_power(io, e).watts() < clos.oeo_power(io, e).watts());
        assert!(clos.oeo_power(io, e).watts() < mesh.oeo_power(io, e).watts());
        // Mesh wastes capacity; SPS and Clos do not.
        assert_eq!(mesh.guaranteed_throughput(), 0.2);
        assert_eq!(sps.guaranteed_throughput(), 1.0);
        assert_eq!(clos.guaranteed_throughput(), 1.0);
        assert_eq!(central.guaranteed_throughput(), 0.5);
        // Names render.
        assert!(mesh.name().contains("10x10"));
        let _ = central.name();
    }

    #[test]
    fn mesh_conversions_track_hop_count() {
        let m = DesignPoint::Mesh { k: 10 };
        let hops = MeshFabric::new(10, 1.0).mean_hops_uniform();
        assert!((m.oeo_conversions() - hops).abs() < 1e-12);
        assert!(hops > 6.0);
    }
}
