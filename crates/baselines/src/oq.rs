//! The ideal output-queued shared-memory switch.

use std::collections::HashMap;

use rip_telemetry::{EpochClock, MetricsRegistry, Snapshot, TelemetrySink};
use rip_traffic::Packet;
use rip_units::{DataRate, DataSize, SimTime, TimeDelta};
use serde::{Deserialize, Serialize};

/// One packet departure from the ideal switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Departure {
    /// The packet id.
    pub packet: u64,
    /// Output port it left from.
    pub output: usize,
    /// When its last bit left the switch.
    pub departure: SimTime,
}

/// The ideal output-queued (OQ) shared-memory switch — "the holy grail
/// of router architectures that can handle arbitrary admissible traffic
/// at 100 % throughput with work conservation" (§1).
///
/// Memory bandwidth is unbounded: a packet is instantly available at its
/// output queue on arrival, and each output drains its FIFO at line rate
/// whenever it is non-empty (work conservation). Departure times from
/// this switch are the reference both for throughput experiments and for
/// the OQ-mimicking lag measurement of E4.
#[derive(Debug, Clone)]
pub struct IdealOqSwitch {
    num_ports: usize,
    port_rate: DataRate,
    /// Per-output: when the output line becomes free.
    line_free: Vec<SimTime>,
    /// Per-output: bytes currently queued (for occupancy stats).
    queued: Vec<DataSize>,
    /// Peak per-output occupancy observed.
    peak_queued: Vec<DataSize>,
    /// Pending (not yet drained) departures per output, used to update
    /// occupancy lazily.
    in_flight: Vec<Vec<(SimTime, DataSize)>>,
    departures: Vec<Departure>,
    total_in: DataSize,
}

impl IdealOqSwitch {
    /// A switch with `num_ports` ports of `port_rate` each.
    pub fn new(num_ports: usize, port_rate: DataRate) -> Self {
        assert!(num_ports > 0 && !port_rate.is_zero());
        IdealOqSwitch {
            num_ports,
            port_rate,
            line_free: vec![SimTime::ZERO; num_ports],
            queued: vec![DataSize::ZERO; num_ports],
            peak_queued: vec![DataSize::ZERO; num_ports],
            in_flight: vec![Vec::new(); num_ports],
            departures: Vec::new(),
            total_in: DataSize::ZERO,
        }
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.num_ports
    }

    /// Per-port line rate.
    pub fn port_rate(&self) -> DataRate {
        self.port_rate
    }

    /// Offer one packet (arrivals must be fed in non-decreasing arrival
    /// order). Returns its departure record.
    pub fn offer(&mut self, p: &Packet) -> Departure {
        assert!(
            p.output < self.num_ports,
            "output {} out of range",
            p.output
        );
        // Drain bookkeeping: anything that left before this arrival.
        let now = p.arrival;
        let fl = &mut self.in_flight[p.output];
        let mut drained = DataSize::ZERO;
        fl.retain(|&(t, s)| {
            if t <= now {
                drained += s;
                false
            } else {
                true
            }
        });
        self.queued[p.output] = self.queued[p.output].saturating_sub(drained);

        let start = self.line_free[p.output].max(p.arrival);
        let dep = start + self.port_rate.transfer_time(p.size);
        self.line_free[p.output] = dep;
        self.queued[p.output] += p.size;
        self.peak_queued[p.output] = self.peak_queued[p.output].max(self.queued[p.output]);
        self.in_flight[p.output].push((dep, p.size));
        self.total_in += p.size;
        let d = Departure {
            packet: p.id,
            output: p.output,
            departure: dep,
        };
        self.departures.push(d);
        d
    }

    /// Offer a whole arrival-ordered trace and return all departures.
    pub fn run(&mut self, packets: &[Packet]) -> Vec<Departure> {
        packets.iter().map(|p| self.offer(p)).collect()
    }

    /// Offer every packet a pull-based source yields, in order, and
    /// return the departures — the streaming counterpart of
    /// [`IdealOqSwitch::run`], byte-identical for the same sequence.
    pub fn run_source<S: rip_traffic::PacketSource>(&mut self, mut source: S) -> Vec<Departure> {
        let mut out = Vec::new();
        while let Some(p) = source.next_packet() {
            out.push(self.offer(&p));
        }
        out
    }

    /// Like [`IdealOqSwitch::run_source`] but streaming per-epoch
    /// telemetry deltas into `sink` as the run progresses. The ideal
    /// switch has no internal event loop — it advances with each
    /// arrival — so epochs flush whenever an arrival crosses an epoch
    /// boundary. Metrics are a small reference set: packet/byte
    /// counters, a per-output queued-bytes gauge series, and the
    /// packet-delay histogram. Everything is SimTime-stamped, so two
    /// same-seed runs stream byte-identical deltas.
    pub fn run_source_streamed<S: rip_traffic::PacketSource>(
        &mut self,
        mut source: S,
        period: TimeDelta,
        sink: &mut dyn TelemetrySink,
    ) -> Vec<Departure> {
        const SOURCE: &str = "oq";
        let mut clock = EpochClock::new(period);
        let mut prev = Snapshot::empty();
        let mut metrics = MetricsRegistry::new();
        let mut out = Vec::new();
        let mut last_arrival = SimTime::ZERO;
        while let Some(p) = source.next_packet() {
            while p.arrival >= clock.next_boundary() {
                let (epoch, _, to) = clock.advance();
                self.stamp_oq_gauges(&mut metrics, to);
                let snap = metrics.snapshot(to);
                sink.on_epoch(SOURCE, epoch, &snap.delta_since(&prev));
                prev = snap;
            }
            last_arrival = p.arrival;
            let d = self.offer(&p);
            metrics.inc("oq.packets", 1);
            metrics.inc("oq.bytes", p.size.bytes());
            metrics.observe("oq.delay_ns", d.departure.since(p.arrival).as_ns_f64());
            out.push(d);
        }
        // Final epoch: stamp at the last event time the run saw so the
        // stream never references wall-clock state.
        let end = self.last_departure().unwrap_or(last_arrival);
        self.stamp_oq_gauges(&mut metrics, end);
        let snap = metrics.snapshot(end);
        sink.on_epoch(SOURCE, clock.epoch(), &snap.delta_since(&prev));
        sink.on_run_end(SOURCE, end, &metrics);
        out
    }

    fn stamp_oq_gauges(&self, metrics: &mut MetricsRegistry, at: SimTime) {
        let queued: u64 = self.queued.iter().map(|q| q.bytes()).sum();
        let peak: u64 = self.peak_queued.iter().map(|q| q.bytes()).sum();
        metrics.set_gauge("oq.queued_bytes", at, queued as f64);
        metrics.set_gauge("oq.peak_queued_bytes", at, peak as f64);
    }

    /// All departures so far, in offer order.
    pub fn departures(&self) -> &[Departure] {
        &self.departures
    }

    /// Map of packet id → departure time (for mimic comparisons).
    pub fn departure_map(&self) -> HashMap<u64, SimTime> {
        self.departures
            .iter()
            .map(|d| (d.packet, d.departure))
            .collect()
    }

    /// Peak queued bytes at `output`.
    pub fn peak_occupancy(&self, output: usize) -> DataSize {
        self.peak_queued[output]
    }

    /// The time the last bit leaves the switch.
    pub fn last_departure(&self) -> Option<SimTime> {
        self.departures.iter().map(|d| d.departure).max()
    }

    /// Delivered throughput over the span from the first arrival to the
    /// last departure.
    pub fn delivered_rate(&self, first_arrival: SimTime) -> DataRate {
        match self.last_departure() {
            Some(end) if end > first_arrival => {
                let dt = end.since(first_arrival);
                DataRate::from_bps(
                    u64::try_from(
                        self.total_in.bits() as u128 * rip_units::PS_PER_S as u128
                            / dt.as_ps() as u128,
                    )
                    .expect("rate overflow"),
                )
            }
            _ => DataRate::ZERO,
        }
    }

    /// Mean per-packet delay (departure − arrival) of a run.
    pub fn mean_delay(&self, packets: &[Packet]) -> TimeDelta {
        assert_eq!(packets.len(), self.departures.len());
        if packets.is_empty() {
            return TimeDelta::ZERO;
        }
        let total: u64 = packets
            .iter()
            .zip(&self.departures)
            .map(|(p, d)| d.departure.since(p.arrival).as_ps())
            .sum();
        TimeDelta::from_ps(total / packets.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_units::DataSize;

    fn pkt(id: u64, output: usize, bytes: u64, arrival_ns: u64) -> Packet {
        Packet::new(
            id,
            0,
            output,
            DataSize::from_bytes(bytes),
            SimTime::from_ns(arrival_ns),
        )
    }

    #[test]
    fn empty_output_departs_after_serialization() {
        // 1000 B at 100 Gb/s = 80 ns.
        let mut sw = IdealOqSwitch::new(4, DataRate::from_gbps(100));
        let d = sw.offer(&pkt(1, 2, 1000, 50));
        assert_eq!(d.departure, SimTime::from_ns(130));
        assert_eq!(d.output, 2);
    }

    #[test]
    fn fifo_order_per_output() {
        let mut sw = IdealOqSwitch::new(2, DataRate::from_gbps(100));
        let d1 = sw.offer(&pkt(1, 0, 1000, 0));
        let d2 = sw.offer(&pkt(2, 0, 1000, 10));
        // Second packet waits for the first: departs at 80 + 80 = 160.
        assert_eq!(d1.departure, SimTime::from_ns(80));
        assert_eq!(d2.departure, SimTime::from_ns(160));
    }

    #[test]
    fn outputs_are_independent() {
        let mut sw = IdealOqSwitch::new(2, DataRate::from_gbps(100));
        sw.offer(&pkt(1, 0, 1000, 0));
        let d = sw.offer(&pkt(2, 1, 1000, 0));
        assert_eq!(d.departure, SimTime::from_ns(80));
    }

    #[test]
    fn work_conservation_idle_line_restarts_immediately() {
        let mut sw = IdealOqSwitch::new(1, DataRate::from_gbps(100));
        sw.offer(&pkt(1, 0, 1000, 0)); // departs 80
        let d = sw.offer(&pkt(2, 0, 1000, 500)); // line idle since 80
        assert_eq!(d.departure, SimTime::from_ns(580));
    }

    #[test]
    fn occupancy_tracks_queue_build_up() {
        let mut sw = IdealOqSwitch::new(1, DataRate::from_gbps(100));
        for i in 0..5 {
            sw.offer(&pkt(i, 0, 1000, 0));
        }
        // All five queued at t=0 before any drain.
        assert_eq!(sw.peak_occupancy(0), DataSize::from_bytes(5000));
        // A late packet sees earlier ones drained.
        sw.offer(&pkt(9, 0, 1000, 1_000_000));
        assert_eq!(sw.peak_occupancy(0), DataSize::from_bytes(5000));
    }

    #[test]
    fn full_load_delivers_full_rate() {
        // Saturate one output: back-to-back 1000 B packets.
        let mut sw = IdealOqSwitch::new(1, DataRate::from_gbps(100));
        let pkts: Vec<Packet> = (0..1000).map(|i| pkt(i, 0, 1000, i * 80)).collect();
        sw.run(&pkts);
        let rate = sw.delivered_rate(SimTime::ZERO);
        assert!(
            (rate.gbps() - 100.0).abs() / 100.0 < 0.01,
            "{}",
            rate.gbps()
        );
        assert_eq!(sw.mean_delay(&pkts), TimeDelta::from_ns(80));
    }

    #[test]
    fn streamed_run_matches_run_and_reconstructs_metrics() {
        use rip_telemetry::MemorySink;

        let pkts: Vec<Packet> = (0..200)
            .map(|i| pkt(i, (i % 2) as usize, 500, i * 37))
            .collect();
        let mut silent = IdealOqSwitch::new(2, DataRate::from_gbps(100));
        let want = silent.run(&pkts);

        let run_streamed = || {
            let mut sw = IdealOqSwitch::new(2, DataRate::from_gbps(100));
            let mut sink = MemorySink::new();
            let deps = sw.run_source_streamed(
                rip_traffic::ReplaySource::new(&pkts),
                TimeDelta::from_ns(1_000),
                &mut sink,
            );
            (deps, sink.into_records())
        };
        let (deps_a, recs_a) = run_streamed();
        let (deps_b, recs_b) = run_streamed();
        // Streaming telemetry must not perturb the departures, and two
        // identical runs must stream identical records.
        assert_eq!(deps_a, want);
        assert_eq!(deps_b, want);
        assert_eq!(recs_a, recs_b);
        assert!(!recs_a.is_empty());

        // Replaying every epoch delta reconstructs the final registry.
        let mut rebuilt = rip_telemetry::MetricsRegistry::new();
        let mut totals = None;
        for r in &recs_a {
            match r {
                rip_telemetry::SinkRecord::Epoch { delta, .. } => rebuilt.apply_delta(delta),
                rip_telemetry::SinkRecord::RunEnd { totals: t, .. } => totals = Some(t.clone()),
                rip_telemetry::SinkRecord::Span { .. }
                | rip_telemetry::SinkRecord::Watchdog { .. } => {}
            }
        }
        let totals = totals.expect("run_end record");
        assert_eq!(
            serde_json::to_string(&rebuilt).unwrap(),
            serde_json::to_string(&totals).unwrap()
        );
    }

    #[test]
    fn departure_map_contains_all_packets() {
        let mut sw = IdealOqSwitch::new(2, DataRate::from_gbps(40));
        let pkts = vec![pkt(10, 0, 64, 0), pkt(11, 1, 64, 1)];
        sw.run(&pkts);
        let m = sw.departure_map();
        assert_eq!(m.len(), 2);
        assert!(m.contains_key(&10) && m.contains_key(&11));
        assert_eq!(sw.last_departure(), m.values().copied().max());
    }
}
