//! Offline stand-in for `serde_json`: JSON text ↔ the vendored
//! [`serde::Value`] tree, plus the typed entry points the workspace
//! uses (`to_string`, `to_string_pretty`, `from_str`).

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::{DeError, Deserialize, Number, Serialize};

/// A serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty-printed (2-space indent) JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

/// Convert a typed value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::U64(u) => out.push_str(&u.to_string()),
        Number::I64(i) => out.push_str(&i.to_string()),
        Number::F64(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep whole floats readable and round-trippable.
                    out.push_str(&format!("{:.1}", f));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                // JSON has no NaN/Infinity; upstream serde_json emits null.
                out.push_str("null");
            }
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let line = self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
            + 1;
        Error::new(format!("{msg} at line {line}"))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "`{`")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "`:`")?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "`[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "`\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // workspace's configs; map lone surrogates
                            // to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 scalar. Validate a
                    // bounded window, not the whole remaining input —
                    // the latter is O(n) per character and turns
                    // multi-megabyte documents quadratic.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let prefix = match std::str::from_utf8(window) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .expect("validated prefix")
                        }
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    };
                    let c = prefix.chars().next().expect("non-empty checked");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_tree() {
        let text = r#"{"a": 1, "b": [true, null, 2.5], "c": {"d": "x\ny"}, "e": -3}"#;
        let v = parse(text).unwrap();
        let compact = to_string(&ValueWrap(v.clone())).unwrap();
        let v2 = parse(&compact).unwrap();
        assert_eq!(v, v2);
    }

    struct ValueWrap(Value);
    impl Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1u64, 2, 3];
        let text = to_string_pretty(&xs).unwrap();
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn floats_round_trip() {
        let x = 0.9217f64;
        let text = to_string(&x).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, x);
        // Whole floats keep a decimal point so they read back as floats.
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
    }
}
