//! Offline stand-in for `proptest`.
//!
//! Implements the property-testing surface this workspace uses:
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`,
//! `Strategy` (ranges, tuples, `prop_map`, `Just`),
//! `prop::collection::vec`, `prop::sample::{select, Index}`,
//! `any::<T>()` and `ProptestConfig::with_cases`.
//!
//! Cases are generated from a deterministic seed derived from the test
//! name, so failures reproduce run-to-run. Unlike upstream proptest
//! there is **no shrinking**: a failing case reports its exact inputs
//! instead of a minimized one.

#![forbid(unsafe_code)]

use std::fmt;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The generator driving case construction.
pub type TestRng = StdRng;

/// A failed property within a test case.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// The result of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (retries; panics if the
    /// predicate rejects 1000 draws in a row).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive draws: {}",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Types with a canonical "anything" strategy, via [`any`].
pub trait Arbitrary: Sized + Debug {
    /// The strategy type [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A full-domain strategy for primitives.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random()
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// The canonical strategy for `T` (`any::<u32>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive-exclusive size range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: r.end() + 1,
            }
        }
    }

    /// A strategy for vectors of `inner`-generated elements.
    pub struct VecStrategy<S> {
        inner: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.inner.generate(rng)).collect()
        }
    }

    /// `vec(element_strategy, size_range)`.
    pub fn vec<S: Strategy>(inner: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            inner,
            size: size.into(),
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Arbitrary, Strategy, TestRng};
    use rand::Rng;
    use std::fmt::Debug;

    /// Uniform choice from a fixed set of options.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select() needs options");
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }

    /// `select(options)`: draw one of the given values.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    /// An abstract index into a collection whose length is only known
    /// inside the test body (`idx.index(len)`).
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a concrete length.
        ///
        /// # Panics
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    /// Full-domain strategy for [`Index`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyIndex;

    impl Strategy for AnyIndex {
        type Value = Index;

        fn generate(&self, rng: &mut TestRng) -> Index {
            Index(rng.random())
        }
    }

    impl Arbitrary for Index {
        type Strategy = AnyIndex;

        fn arbitrary() -> AnyIndex {
            AnyIndex
        }
    }
}

/// Derive a stable 64-bit seed from a test's name.
#[doc(hidden)]
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Run `cases` generated test cases; panic (with the case description)
/// on the first failure.
#[doc(hidden)]
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), (String, TestCaseError)>,
{
    let base = seed_for(name);
    for i in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(base.wrapping_add(i as u64));
        if let Err((desc, e)) = case(&mut rng) {
            panic!(
                "proptest `{name}` failed at case {i}/{total}: {e}\n  inputs: {desc}\n  \
                 (deterministic; rerun reproduces this case)",
                total = config.cases
            );
        }
    }
}

/// The prelude: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// Namespaced access mirroring upstream (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Discard a case that does not meet a precondition (counts as a pass;
/// upstream retries, which matters little without shrinking).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Define property tests. Grammar subset of upstream `proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(any::<u32>(), 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __desc = {
                    let mut parts: Vec<String> = Vec::new();
                    $(parts.push(format!("{} = {:?}", stringify!($arg), &$arg));)+
                    parts.join(", ")
                };
                let __result: $crate::TestCaseResult = (|| { $body Ok(()) })();
                __result.map_err(|e| (__desc, e))
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_give_in_bounds_values(x in 3u64..17, y in 0u8..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            v in prop::collection::vec((0u32..10, any::<bool>()), 1..20),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (x, _) in &v {
                prop_assert!(*x < 10);
            }
        }

        #[test]
        fn map_and_select_work(
            s in prop::sample::select(vec![2usize, 4, 8]),
            m in (0u64..5).prop_map(|x| x * 2),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(s.is_power_of_two());
            prop_assert!(m % 2 == 0 && m < 10);
            prop_assert!(idx.index(7) < 7);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::seed_from_u64(crate::seed_for("t"));
        let mut b = crate::TestRng::seed_from_u64(crate::seed_for("t"));
        use rand::Rng;
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }

    use rand::SeedableRng;
}
