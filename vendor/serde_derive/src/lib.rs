//! Offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls against the
//! vendored value-tree serde (see `vendor/serde`). The parser is
//! hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote` in the
//! offline environment) and supports the shapes this workspace uses:
//!
//! - structs with named fields, tuple structs, unit structs
//! - enums with unit, tuple and struct variants (externally tagged by
//!   default, internally tagged with `#[serde(tag = "...")]`)
//! - container attributes: `transparent`, `tag = "..."`,
//!   `rename_all = "snake_case"`
//! - field attribute: `default`
//!
//! Generics are intentionally unsupported (nothing in the workspace
//! derives serde on a generic type); the macro emits a clear
//! `compile_error!` if that changes.

use proc_macro::{TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ContainerAttrs {
    transparent: bool,
    tag: Option<String>,
    rename_all: Option<String>,
}

#[derive(Default, Clone)]
struct FieldAttrs {
    default: bool,
}

struct NamedField {
    name: String,
    attrs: FieldAttrs,
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<NamedField>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    attrs: ContainerAttrs,
    body: Body,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn peek_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == s)
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), String> {
        match self.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == c => Ok(()),
            other => Err(format!("expected `{c}`, found {other:?}")),
        }
    }
}

/// Strip the surrounding quotes from a string literal's token text.
fn unquote(lit: &str) -> String {
    let s = lit.trim();
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        s[1..s.len() - 1].to_string()
    } else {
        s.to_string()
    }
}

/// Parse the items of one `#[serde(...)]` group: `key` or `key = "v"`.
fn parse_serde_items(group: TokenStream) -> Result<Vec<(String, Option<String>)>, String> {
    let mut out = Vec::new();
    let mut cur = Cursor::new(group);
    while !cur.at_end() {
        let key = cur.expect_ident()?;
        let mut value = None;
        if cur.peek_punct('=') {
            cur.next();
            match cur.next() {
                Some(TokenTree::Literal(l)) => value = Some(unquote(&l.to_string())),
                other => return Err(format!("expected literal after `{key} =`, found {other:?}")),
            }
        }
        out.push((key, value));
        if cur.peek_punct(',') {
            cur.next();
        }
    }
    Ok(out)
}

/// Consume any attributes at the cursor; return the serde items found.
fn parse_attrs(cur: &mut Cursor) -> Result<Vec<(String, Option<String>)>, String> {
    let mut items = Vec::new();
    while cur.peek_punct('#') {
        cur.next();
        let group = match cur.next() {
            Some(TokenTree::Group(g)) => g,
            other => return Err(format!("expected attribute group, found {other:?}")),
        };
        let mut inner = Cursor::new(group.stream());
        if inner.peek_ident("serde") {
            inner.next();
            match inner.next() {
                Some(TokenTree::Group(g)) => items.extend(parse_serde_items(g.stream())?),
                other => return Err(format!("malformed #[serde] attribute: {other:?}")),
            }
        }
        // Non-serde attributes (doc comments, derives, etc.) are skipped.
    }
    Ok(items)
}

fn container_attrs(items: &[(String, Option<String>)]) -> Result<ContainerAttrs, String> {
    let mut a = ContainerAttrs::default();
    for (key, value) in items {
        match (key.as_str(), value) {
            ("transparent", None) => a.transparent = true,
            ("tag", Some(v)) => a.tag = Some(v.clone()),
            ("rename_all", Some(v)) => {
                if v != "snake_case" {
                    return Err(format!(
                        "unsupported rename_all = \"{v}\" (only snake_case)"
                    ));
                }
                a.rename_all = Some(v.clone());
            }
            _ => return Err(format!("unsupported container serde attribute `{key}`")),
        }
    }
    Ok(a)
}

fn field_attrs(items: &[(String, Option<String>)]) -> Result<FieldAttrs, String> {
    let mut a = FieldAttrs::default();
    for (key, value) in items {
        match (key.as_str(), value) {
            ("default", None) => a.default = true,
            _ => return Err(format!("unsupported field serde attribute `{key}`")),
        }
    }
    Ok(a)
}

/// Skip visibility qualifiers (`pub`, `pub(crate)`, ...).
fn skip_visibility(cur: &mut Cursor) {
    if cur.peek_ident("pub") {
        cur.next();
        if let Some(TokenTree::Group(g)) = cur.peek() {
            if g.delimiter() == proc_macro::Delimiter::Parenthesis {
                cur.next();
            }
        }
    }
}

/// Skip a type expression up to a top-level `,` (or the end), tracking
/// angle-bracket depth so commas inside `Vec<(A, B)>` don't split.
fn skip_type(cur: &mut Cursor) {
    let mut angle: i32 = 0;
    while let Some(t) = cur.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle <= 0 => return,
            _ => {}
        }
        cur.next();
    }
}

fn parse_named_fields(group: TokenStream) -> Result<Vec<NamedField>, String> {
    let mut cur = Cursor::new(group);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let attrs = field_attrs(&parse_attrs(&mut cur)?)?;
        skip_visibility(&mut cur);
        let name = cur.expect_ident()?;
        cur.expect_punct(':')?;
        skip_type(&mut cur);
        if cur.peek_punct(',') {
            cur.next();
        }
        fields.push(NamedField { name, attrs });
    }
    Ok(fields)
}

fn parse_tuple_fields(group: TokenStream) -> Result<usize, String> {
    let mut cur = Cursor::new(group);
    let mut count = 0;
    while !cur.at_end() {
        let _ = parse_attrs(&mut cur)?;
        skip_visibility(&mut cur);
        if cur.at_end() {
            break;
        }
        skip_type(&mut cur);
        count += 1;
        if cur.peek_punct(',') {
            cur.next();
        }
    }
    Ok(count)
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor::new(group);
    let mut variants = Vec::new();
    while !cur.at_end() {
        let _ = parse_attrs(&mut cur)?;
        let name = cur.expect_ident()?;
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) => {
                let g = g.clone();
                cur.next();
                match g.delimiter() {
                    proc_macro::Delimiter::Brace => Fields::Named(parse_named_fields(g.stream())?),
                    proc_macro::Delimiter::Parenthesis => {
                        Fields::Tuple(parse_tuple_fields(g.stream())?)
                    }
                    other => return Err(format!("unexpected variant delimiter {other:?}")),
                }
            }
            _ => Fields::Unit,
        };
        if cur.peek_punct(',') {
            cur.next();
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor::new(input);
    let attrs = container_attrs(&parse_attrs(&mut cur)?)?;
    skip_visibility(&mut cur);
    let keyword = cur.expect_ident()?;
    let name = cur.expect_ident()?;
    if cur.peek_punct('<') {
        return Err(format!(
            "derive(Serialize/Deserialize) on generic type `{name}` is not supported by the \
             vendored serde_derive"
        ));
    }
    let body = match keyword.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == proc_macro::Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == proc_macro::Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(parse_tuple_fields(g.stream())?))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            other => return Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == proc_macro::Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        },
        other => return Err(format!("expected struct or enum, found `{other}`")),
    };
    Ok(Item { name, attrs, body })
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn rendered_name(raw: &str, attrs: &ContainerAttrs) -> String {
    if attrs.rename_all.is_some() {
        snake_case(raw)
    } else {
        raw.to_string()
    }
}

fn gen_serialize(item: &Item) -> Result<String, String> {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => match fields {
            Fields::Named(fs) if item.attrs.transparent => {
                if fs.len() != 1 {
                    return Err("#[serde(transparent)] needs exactly one field".into());
                }
                format!("serde::Serialize::to_value(&self.{})", fs[0].name)
            }
            Fields::Named(fs) => {
                let entries: Vec<String> = fs
                    .iter()
                    .map(|f| {
                        format!(
                            "(String::from(\"{key}\"), serde::Serialize::to_value(&self.{f}))",
                            key = rendered_name(&f.name, &item.attrs),
                            f = f.name
                        )
                    })
                    .collect();
                format!("serde::Value::Object(vec![{}])", entries.join(", "))
            }
            Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
            Fields::Tuple(n) => {
                let entries: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("serde::Value::Array(vec![{}])", entries.join(", "))
            }
            Fields::Unit => "serde::Value::Null".to_string(),
        },
        Body::Enum(variants) => {
            let mut arms = Vec::new();
            for v in variants {
                let vname = rendered_name(&v.name, &item.attrs);
                let arm = if let Some(tag) = &item.attrs.tag {
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{v} => serde::Value::Object(vec![(String::from(\"{tag}\"), \
                             serde::Value::String(String::from(\"{vname}\")))]),",
                            v = v.name
                        ),
                        Fields::Named(fs) => {
                            let pats: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
                            let entries: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from(\"{key}\"), \
                                         serde::Serialize::to_value({f}))",
                                        key = rendered_name(&f.name, &item.attrs),
                                        f = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{v} {{ {pats} }} => {{ let mut __o = \
                                 vec![(String::from(\"{tag}\"), \
                                 serde::Value::String(String::from(\"{vname}\")))]; \
                                 __o.extend(vec![{entries}]); serde::Value::Object(__o) }},",
                                v = v.name,
                                pats = pats.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                        Fields::Tuple(_) => {
                            return Err(format!(
                                "tuple variant {name}::{} cannot be internally tagged",
                                v.name
                            ))
                        }
                    }
                } else {
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{v} => serde::Value::String(String::from(\"{vname}\")),",
                            v = v.name
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{v}(__f0) => serde::Value::Object(vec![\
                             (String::from(\"{vname}\"), serde::Serialize::to_value(__f0))]),",
                            v = v.name
                        ),
                        Fields::Tuple(n) => {
                            let pats: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{v}({pats}) => serde::Value::Object(vec![\
                                 (String::from(\"{vname}\"), serde::Value::Array(vec![{vals}]))]),",
                                v = v.name,
                                pats = pats.join(", "),
                                vals = vals.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let pats: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
                            let entries: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from(\"{key}\"), \
                                         serde::Serialize::to_value({f}))",
                                        key = rendered_name(&f.name, &item.attrs),
                                        f = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{v} {{ {pats} }} => serde::Value::Object(vec![\
                                 (String::from(\"{vname}\"), \
                                 serde::Value::Object(vec![{entries}]))]),",
                                v = v.name,
                                pats = pats.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                };
                arms.push(arm);
            }
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    Ok(format!(
        "impl serde::Serialize for {name} {{ fn to_value(&self) -> serde::Value {{ {body} }} }}"
    ))
}

fn named_field_builders(fs: &[NamedField], attrs: &ContainerAttrs, ty: &str) -> Vec<String> {
    fs.iter()
        .map(|f| {
            let getter = if f.attrs.default {
                "serde::__field_or_default"
            } else {
                "serde::__field"
            };
            format!(
                "{f}: {getter}(__obj, \"{key}\", \"{ty}\")?",
                f = f.name,
                key = rendered_name(&f.name, attrs),
            )
        })
        .collect()
}

fn gen_deserialize(item: &Item) -> Result<String, String> {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => match fields {
            Fields::Named(fs) if item.attrs.transparent => {
                if fs.len() != 1 {
                    return Err("#[serde(transparent)] needs exactly one field".into());
                }
                format!(
                    "Ok({name} {{ {f}: serde::Deserialize::from_value(v)? }})",
                    f = fs[0].name
                )
            }
            Fields::Named(fs) => {
                let builders = named_field_builders(fs, &item.attrs, name);
                format!(
                    "let __obj = v.as_object().ok_or_else(|| \
                     serde::DeError::expected(\"object\", v, \"{name}\"))?; \
                     Ok({name} {{ {} }})",
                    builders.join(", ")
                )
            }
            Fields::Tuple(1) => format!("Ok({name}(serde::Deserialize::from_value(v)?))"),
            Fields::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Deserialize::from_value(&__a[{i}])?"))
                    .collect();
                format!(
                    "let __a = v.as_array().ok_or_else(|| \
                     serde::DeError::expected(\"array\", v, \"{name}\"))?; \
                     if __a.len() != {n} {{ return Err(serde::DeError::custom(format!(\
                     \"expected {n} elements for {name}, found {{}}\", __a.len()))); }} \
                     Ok({name}({elems}))",
                    elems = elems.join(", ")
                )
            }
            Fields::Unit => format!("let _ = v; Ok({name})"),
        },
        Body::Enum(variants) => {
            if let Some(tag) = &item.attrs.tag {
                let mut arms = Vec::new();
                for v in variants {
                    let vname = rendered_name(&v.name, &item.attrs);
                    let arm = match &v.fields {
                        Fields::Unit => format!("\"{vname}\" => Ok({name}::{v}),", v = v.name),
                        Fields::Named(fs) => {
                            let builders = named_field_builders(fs, &item.attrs, name);
                            format!(
                                "\"{vname}\" => Ok({name}::{v} {{ {} }}),",
                                builders.join(", "),
                                v = v.name
                            )
                        }
                        Fields::Tuple(_) => {
                            return Err(format!(
                                "tuple variant {name}::{} cannot be internally tagged",
                                v.name
                            ))
                        }
                    };
                    arms.push(arm);
                }
                format!(
                    "let __obj = v.as_object().ok_or_else(|| \
                     serde::DeError::expected(\"object\", v, \"{name}\"))?; \
                     let __tag = serde::__get(__obj, \"{tag}\").and_then(|t| t.as_str())\
                     .ok_or_else(|| serde::DeError::custom(\
                     \"missing `{tag}` tag for {name}\"))?; \
                     match __tag {{ {} __other => \
                     Err(serde::DeError::unknown_variant(__other, \"{name}\")) }}",
                    arms.join(" ")
                )
            } else {
                let mut string_arms = Vec::new();
                let mut object_arms = Vec::new();
                for v in variants {
                    let vname = rendered_name(&v.name, &item.attrs);
                    match &v.fields {
                        Fields::Unit => {
                            string_arms
                                .push(format!("\"{vname}\" => Ok({name}::{v}),", v = v.name));
                            object_arms
                                .push(format!("\"{vname}\" => Ok({name}::{v}),", v = v.name));
                        }
                        Fields::Tuple(1) => object_arms.push(format!(
                            "\"{vname}\" => Ok({name}::{v}(\
                             serde::Deserialize::from_value(__payload)?)),",
                            v = v.name
                        )),
                        Fields::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Deserialize::from_value(&__a[{i}])?"))
                                .collect();
                            object_arms.push(format!(
                                "\"{vname}\" => {{ let __a = __payload.as_array()\
                                 .ok_or_else(|| serde::DeError::expected(\
                                 \"array\", __payload, \"{name}\"))?; \
                                 if __a.len() != {n} {{ return Err(serde::DeError::custom(\
                                 format!(\"expected {n} elements for {name}::{v}, found {{}}\", \
                                 __a.len()))); }} Ok({name}::{v}({elems})) }},",
                                v = v.name,
                                elems = elems.join(", ")
                            ));
                        }
                        Fields::Named(fs) => {
                            let builders = named_field_builders(fs, &item.attrs, name);
                            object_arms.push(format!(
                                "\"{vname}\" => {{ let __obj = __payload.as_object()\
                                 .ok_or_else(|| serde::DeError::expected(\
                                 \"object\", __payload, \"{name}\"))?; \
                                 Ok({name}::{v} {{ {} }}) }},",
                                builders.join(", "),
                                v = v.name
                            ));
                        }
                    }
                }
                format!(
                    "match v {{ \
                     serde::Value::String(__s) => match __s.as_str() {{ {sa} __other => \
                     Err(serde::DeError::unknown_variant(__other, \"{name}\")) }}, \
                     serde::Value::Object(__o) if __o.len() == 1 => {{ \
                     let (__k, __payload) = &__o[0]; \
                     match __k.as_str() {{ {oa} __other => \
                     Err(serde::DeError::unknown_variant(__other, \"{name}\")) }} }}, \
                     __other => Err(serde::DeError::expected(\
                     \"string or single-key object\", __other, \"{name}\")) }}",
                    sa = string_arms.join(" "),
                    oa = object_arms.join(" ")
                )
            }
        }
    };
    Ok(format!(
        "impl serde::Deserialize for {name} {{ \
         fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }} }}"
    ))
}

fn finish(result: Result<String, String>) -> TokenStream {
    let src = match result {
        Ok(src) => src,
        Err(msg) => format!("compile_error!({:?});", msg),
    };
    src.parse().unwrap_or_else(|e| {
        format!(
            "compile_error!({:?});",
            format!("vendored serde_derive generated invalid code: {e:?}")
        )
        .parse()
        .expect("compile_error token stream parses")
    })
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    finish(parse_item(input).and_then(|item| gen_serialize(&item)))
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    finish(parse_item(input).and_then(|item| gen_deserialize(&item)))
}
