//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a self-contained serialization layer exposing the serde
//! surface it uses: `#[derive(Serialize, Deserialize)]` (with the
//! `transparent`, `tag`, `rename_all` and `default` attributes),
//! plus `serde_json::{to_string, to_string_pretty, from_str}`.
//!
//! Unlike upstream serde's visitor architecture, this implementation
//! round-trips through an owned [`Value`] tree — simpler, and entirely
//! sufficient for the configuration files and report dumps this
//! workspace reads and writes.

#![forbid(unsafe_code)]

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (insertion order preserved for determinism).
    Object(Vec<(String, Value)>),
}

/// A JSON number, kept in its widest lossless representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
}

impl Value {
    /// The fields if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// "expected X, found Y while parsing T".
    pub fn expected(what: &str, found: &Value, ty: &str) -> Self {
        DeError {
            msg: format!("expected {what}, found {} while parsing {ty}", found.kind()),
        }
    }

    /// "missing field F of T".
    pub fn missing(field: &str, ty: &str) -> Self {
        DeError {
            msg: format!("missing field `{field}` of {ty}"),
        }
    }

    /// "unknown variant V of T".
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError {
            msg: format!("unknown variant `{variant}` of {ty}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// The value to use when a field of this type is absent from an
    /// object (`None` means "absence is an error"). `Option<T>` uses
    /// this to default to `None`, matching upstream serde.
    #[doc(hidden)]
    fn absent() -> Option<Self> {
        None
    }
}

/// Compatibility alias used via `serde::de::DeserializeOwned` bounds.
pub mod de {
    /// Owned deserialization (all deserialization here is owned).
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Number(n) => *n,
                    _ => return Err(DeError::expected("number", v, stringify!($t))),
                };
                let u = match n {
                    Number::U64(u) => u,
                    Number::I64(i) if i >= 0 => i as u64,
                    Number::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    _ => {
                        return Err(DeError::custom(format!(
                            "number {n:?} out of range for {}",
                            stringify!($t)
                        )))
                    }
                };
                <$t>::try_from(u).map_err(|_| {
                    DeError::custom(format!("{u} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::Number(Number::U64(i as u64))
                } else {
                    Value::Number(Number::I64(i))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Number(n) => *n,
                    _ => return Err(DeError::expected("number", v, stringify!($t))),
                };
                let i = match n {
                    Number::I64(i) => i,
                    Number::U64(u) if u <= i64::MAX as u64 => u as i64,
                    Number::F64(f)
                        if f.fract() == 0.0
                            && f >= i64::MIN as f64
                            && f <= i64::MAX as f64 =>
                    {
                        f as i64
                    }
                    _ => {
                        return Err(DeError::custom(format!(
                            "number {n:?} out of range for {}",
                            stringify!($t)
                        )))
                    }
                };
                <$t>::try_from(i).map_err(|_| {
                    DeError::custom(format!("{i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(Number::F64(f)) => Ok(*f as $t),
                    Value::Number(Number::U64(u)) => Ok(*u as $t),
                    Value::Number(Number::I64(i)) => Ok(*i as $t),
                    _ => Err(DeError::expected("number", v, stringify!($t))),
                }
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v, "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v, "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-char string", v, "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v, "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v
            .as_array()
            .ok_or_else(|| DeError::expected("array", v, "array"))?;
        if a.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, found {}",
                a.len()
            )));
        }
        let items: Result<Vec<T>, DeError> = a.iter().map(T::from_value).collect();
        items.map(|v| {
            v.try_into()
                .expect("length checked above; array conversion cannot fail")
        })
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Into::into)
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(|v| v.into_iter().collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v, "map"))?;
        obj.iter()
            .map(|(k, val)| V::from_value(val).map(|v| (k.clone(), v)))
            .collect()
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::expected("array", v, "tuple"))?;
                let expect = [$( $n , )+].len();
                if a.len() != expect {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expect} elements, found {}", a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}
ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// A `Value` is its own serialization — lets checkpoint containers
// embed already-converted subtrees without re-encoding.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Derive-support helpers (referenced by generated code; not public API)
// ---------------------------------------------------------------------------

/// Look up `key` in an object's fields.
#[doc(hidden)]
pub fn __get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialize a required field (absent `Option` fields become `None`).
#[doc(hidden)]
pub fn __field<T: Deserialize>(obj: &[(String, Value)], key: &str, ty: &str) -> Result<T, DeError> {
    match __get(obj, key) {
        Some(v) => T::from_value(v).map_err(|e| DeError::custom(format!("{ty}.{key}: {e}"))),
        None => T::absent().ok_or_else(|| DeError::missing(key, ty)),
    }
}

/// Deserialize a `#[serde(default)]` field.
#[doc(hidden)]
pub fn __field_or_default<T: Deserialize + Default>(
    obj: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<T, DeError> {
    match __get(obj, key) {
        Some(v) => T::from_value(v).map_err(|e| DeError::custom(format!("{ty}.{key}: {e}"))),
        None => Ok(T::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<u8> = Deserialize::from_value(&vec![1u8, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let t: (u32, f64) = Deserialize::from_value(&(5u32, 0.25f64).to_value()).unwrap();
        assert_eq!(t, (5, 0.25));
    }

    #[test]
    fn option_absence_defaults_to_none() {
        let obj: Vec<(String, Value)> = vec![];
        let x: Option<u64> = __field(&obj, "missing", "T").unwrap();
        assert_eq!(x, None);
        let err = __field::<u64>(&obj, "missing", "T").unwrap_err();
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn numeric_conversions_are_lenient_but_sound() {
        // Whole floats convert to ints (hand-written JSON convenience).
        assert_eq!(
            u32::from_value(&Value::Number(Number::F64(8.0))).unwrap(),
            8
        );
        assert!(u32::from_value(&Value::Number(Number::F64(8.5))).is_err());
        assert!(u8::from_value(&Value::Number(Number::U64(256))).is_err());
        assert!(u64::from_value(&Value::Number(Number::I64(-1))).is_err());
    }
}
