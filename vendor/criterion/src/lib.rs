//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!` — backed by a simple
//! median-of-samples wall-clock measurement. No plotting, no
//! statistical regression analysis; results print as `name ... median
//! time/iter` lines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export matching upstream's convenience (`criterion::black_box`).
pub use std::hint::black_box;

/// Measurement settings plus collected output.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// Runs one benchmark body repeatedly and records timings.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Benchmark `body`, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One untimed warm-up call.
        black_box(body());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(body());
            self.samples.push(t0.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn run_one(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: sample_size.max(1),
        measurement_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    println!(
        "{name:<48} median {:>12.3?}  ({} samples)",
        median,
        b.samples.len()
    );
}

impl Criterion {
    /// Benchmark a single function.
    pub fn bench_function<N: std::fmt::Display>(
        &mut self,
        name: N,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &name.to_string(),
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Set the time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark one function within the group.
    pub fn bench_function<N: std::fmt::Display>(
        &mut self,
        name: N,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, name),
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Finish the group (upstream flushes reports here; a no-op).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // warm-up + at least one timed sample
        assert!(runs >= 2);
    }
}
