//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::thread::scope` for structured
//! fork/join parallelism; since Rust 1.63 the standard library provides
//! the same capability, so this shim forwards to [`std::thread::scope`]
//! while keeping crossbeam's `Result`-returning signature (a panic in
//! any spawned thread surfaces as `Err` instead of unwinding).

#![forbid(unsafe_code)]

/// Scoped threads (crossbeam-utils API subset).
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The error payload of a panicked scope: the boxed panic value.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle passed to [`scope`]'s closure and to every
    /// spawned thread's closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries its panic
        /// payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the
        /// scope handle again so it can spawn siblings (crossbeam
        /// convention).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let me = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&me)),
            }
        }
    }

    /// Run `f` with a scope in which borrowing, scoped threads can be
    /// spawned; joins them all before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn panic_in_scope_becomes_err() {
        let r = crate::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
