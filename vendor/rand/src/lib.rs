//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment for this repository has no access to
//! crates.io, so the workspace vendors the small slice of `rand` it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] convenience methods `random`, `random_range` and
//! `random_bool`. The generator is xoshiro256** seeded through
//! SplitMix64 — a high-quality, deterministic stream; it is *not*
//! stream-compatible with upstream `rand`, which is fine because every
//! consumer in the workspace treats the stream as opaque.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from the full value domain by
/// [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, n)` (Lemire-style
/// widening multiply with rejection for exact uniformity).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let u = f64::draw(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the exclusive bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in random_range");
        start + f64::draw(rng) * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in random_range");
        let u = f32::draw(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniformly random value in `range`.
    fn random_range<T, U: SampleRange<T>>(&mut self, range: U) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator
    /// (xoshiro256**, seeded through SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state, for checkpointing. Feed it back
        /// through [`StdRng::from_state`] to continue the exact stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a previously captured state. The
        /// all-zero state is unreachable from any seeded generator, but
        /// guard it anyway so a hand-built state cannot wedge the
        /// stream at zero.
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..32).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        let zs: Vec<u64> = (0..32).map(|_| c.random()).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.random_range(0u64..=5);
            assert!(y <= 5);
            let f = r.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.random_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "{frac}");
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..17 {
            let _: u64 = a.random();
        }
        let mut b = StdRng::from_state(a.state());
        let xs: Vec<u64> = (0..32).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn f64_draws_are_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
