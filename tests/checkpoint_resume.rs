//! Crash-safe checkpoint/resume integration suite.
//!
//! The checkpoint subsystem must satisfy three cross-crate contracts:
//!
//! * **Byte-identical continuation** — a run interrupted at any
//!   checkpoint and resumed from the on-disk snapshot produces the
//!   same final report and the same telemetry stream as the
//!   uninterrupted same-seed run, through the real container on disk
//!   (CRC envelope, atomic rename, two-slot rotation) and the real
//!   pull-based sources `ripsim` uses.
//! * **Rotation resilience** — truncating the newest snapshot slot
//!   falls back to `.prev`, and resuming from that older checkpoint
//!   still converges to the identical end state.
//! * **SPS plane ordering** — the sequential checkpointed SPS runner
//!   emits the exact stream and report of the threaded
//!   `run_streamed`, interrupted mid-plane or not.

use std::cell::{Cell, RefCell};
use std::path::PathBuf;

use rip_core::{
    FaultPlan, HbmSwitch, LiveOptions, RouterConfig, RunOutcome, SpsRouter, SpsWorkload,
};
use rip_integration_tests::source_for;
use rip_photonics::SplitPattern;
use rip_sim::snapshot::{load_latest, prev_slot, write_snapshot};
use rip_sim::QueueKind;
use rip_telemetry::{MemorySink, SharedSink, SinkRecord};
use rip_traffic::TrafficMatrix;
use rip_units::{SimTime, TimeDelta};
use serde::Value;

const PERIOD: TimeDelta = TimeDelta::from_ns(2_000);

fn json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("serializes")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rip-checkpoint-resume-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(prev_slot(&path));
    path
}

/// The standard single-switch live workload of this suite.
fn live_setup() -> (RouterConfig, TrafficMatrix, SimTime) {
    let cfg = RouterConfig::small();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    (cfg, tm, SimTime::from_ns(40_000))
}

/// Uninterrupted live baseline: the stream and report every
/// checkpointed variant must reproduce byte-for-byte.
fn baseline(seed: u64) -> (Vec<SinkRecord>, String) {
    let (cfg, tm, horizon) = live_setup();
    let staged = SharedSink::new();
    let mut sw = HbmSwitch::new(cfg.clone()).expect("valid config");
    sw.enable_live_telemetry(PERIOD, 64, Box::new(staged.clone()));
    sw.run_source(
        source_for(&cfg, &tm, 0.8, horizon, seed),
        cfg.drain.deadline(horizon),
        &FaultPlan::default(),
    );
    let records = staged.take().records().iter().cloned().collect();
    (records, json(&sw.into_report()))
}

/// Run the checkpointed engine against the real on-disk container,
/// stopping after `stop_after` snapshots; returns the partial stream,
/// the outcome, and the `(epochs, spans)` counts of every snapshot
/// written (in order).
fn run_until(
    seed: u64,
    path: &std::path::Path,
    every: u64,
    stop_after: u64,
) -> (Vec<SinkRecord>, RunOutcome, Vec<(u64, u64)>) {
    run_until_with(seed, path, every, stop_after, QueueKind::default_kind())
}

/// [`run_until`] under an explicit event-queue kernel, so snapshots can
/// be produced by the binary-heap oracle for cross-kernel resume tests.
fn run_until_with(
    seed: u64,
    path: &std::path::Path,
    every: u64,
    stop_after: u64,
    kind: QueueKind,
) -> (Vec<SinkRecord>, RunOutcome, Vec<(u64, u64)>) {
    let (cfg, tm, horizon) = live_setup();
    let staged = SharedSink::new();
    let mut sw = HbmSwitch::new(cfg.clone()).expect("valid config");
    sw.set_queue_kind(kind);
    sw.enable_live_telemetry(PERIOD, 64, Box::new(staged.clone()));
    let written = Cell::new(0u64);
    let counts = RefCell::new(Vec::new());
    let outcome = sw
        .run_source_checkpointed(
            source_for(&cfg, &tm, 0.8, horizon, seed),
            cfg.drain.deadline(horizon),
            &FaultPlan::default(),
            None,
            every,
            || written.get() >= stop_after,
            |state: &Value, epochs: u64, spans: u64| {
                write_snapshot(path, json(state).as_bytes())?;
                written.set(written.get() + 1);
                counts.borrow_mut().push((epochs, spans));
                Ok(())
            },
        )
        .expect("checkpointed run");
    let partial = staged.take().records().iter().cloned().collect();
    (partial, outcome, counts.into_inner())
}

/// Resume the engine from an on-disk snapshot payload and run to
/// completion; returns the continuation stream and the report JSON.
fn resume_from(seed: u64, payload: &[u8]) -> (Vec<SinkRecord>, String) {
    resume_from_with(seed, payload, QueueKind::default_kind())
}

/// [`resume_from`] under an explicit event-queue kernel.
fn resume_from_with(seed: u64, payload: &[u8], kind: QueueKind) -> (Vec<SinkRecord>, String) {
    let (cfg, tm, horizon) = live_setup();
    let text = std::str::from_utf8(payload).expect("snapshot payload is JSON");
    let state = serde_json::parse(text).expect("snapshot payload parses");
    let staged = SharedSink::new();
    let mut sw = HbmSwitch::new(cfg.clone()).expect("valid config");
    sw.set_queue_kind(kind);
    sw.enable_live_telemetry(PERIOD, 64, Box::new(staged.clone()));
    let outcome = sw
        .run_source_checkpointed(
            source_for(&cfg, &tm, 0.8, horizon, seed),
            cfg.drain.deadline(horizon),
            &FaultPlan::default(),
            Some(&state),
            1_000_000,
            || false,
            |_, _, _| Ok(()),
        )
        .expect("resumed run");
    assert_eq!(outcome, RunOutcome::Completed);
    let records = staged.take().records().iter().cloned().collect();
    (records, json(&sw.into_report()))
}

#[test]
fn killed_and_resumed_run_is_byte_identical_through_the_disk_container() {
    let seed = 11;
    let path = scratch("engine.snap");
    let (base_records, base_report) = baseline(seed);

    let (partial, outcome, counts) = run_until(seed, &path, 2, 3);
    assert_eq!(outcome, RunOutcome::Interrupted);
    assert!(counts.len() >= 3, "expected at least 3 snapshots");

    // The newest slot resumes to the identical end state.
    let (payload, slot) = load_latest(&path).expect("snapshot loads");
    assert_eq!(slot, path);
    let (resumed, report) = resume_from(seed, &payload);
    assert_eq!(report, base_report, "resumed report diverged");

    // Stream: baseline prefix up to the last snapshot, then the
    // continuation. The partial stream must cover at least that prefix
    // (records after the snapshot are cut by the resume bookkeeping).
    let &(epochs, spans) = counts.last().unwrap();
    let keep = (epochs + spans) as usize;
    assert!(partial.len() >= keep);
    assert_eq!(partial[..keep], base_records[..keep]);
    let merged: Vec<SinkRecord> = base_records[..keep]
        .iter()
        .cloned()
        .chain(resumed)
        .collect();
    assert_eq!(merged, base_records, "merged stream diverged");
}

#[test]
fn truncated_newest_slot_falls_back_to_prev_and_still_converges() {
    let seed = 23;
    let path = scratch("rotated.snap");
    let (base_records, base_report) = baseline(seed);

    let (_, outcome, counts) = run_until(seed, &path, 2, 3);
    assert_eq!(outcome, RunOutcome::Interrupted);
    assert!(prev_slot(&path).exists(), "rotation left no .prev slot");

    // Crash mid-write: the newest slot is cut short. Loading must fall
    // back to the previous rotation slot...
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let (payload, slot) = load_latest(&path).expect("fallback loads");
    assert_eq!(slot, prev_slot(&path));

    // ...and resuming from that older checkpoint still reproduces the
    // uninterrupted run exactly.
    let (resumed, report) = resume_from(seed, &payload);
    assert_eq!(report, base_report);
    let &(epochs, spans) = &counts[counts.len() - 2];
    let keep = (epochs + spans) as usize;
    let merged: Vec<SinkRecord> = base_records[..keep]
        .iter()
        .cloned()
        .chain(resumed)
        .collect();
    assert_eq!(merged, base_records);
}

/// One cross-kernel direction: snapshot under `snap_kind`, resume under
/// `resume_kind`, and require the merged stream and final report to be
/// byte-identical to the uninterrupted default-kernel baseline.
fn assert_cross_kernel_resume(seed: u64, name: &str, snap_kind: QueueKind, resume_kind: QueueKind) {
    let path = scratch(name);
    let (base_records, base_report) = baseline(seed);

    let (_, outcome, counts) = run_until_with(seed, &path, 2, 2, snap_kind);
    assert_eq!(outcome, RunOutcome::Interrupted);
    let (payload, _) = load_latest(&path).expect("snapshot loads");
    let (resumed, report) = resume_from_with(seed, &payload, resume_kind);
    assert_eq!(
        report, base_report,
        "{snap_kind:?} snapshot resumed under {resume_kind:?} diverged"
    );
    let &(epochs, spans) = counts.last().unwrap();
    let keep = (epochs + spans) as usize;
    let merged: Vec<SinkRecord> = base_records[..keep]
        .iter()
        .cloned()
        .chain(resumed)
        .collect();
    assert_eq!(
        merged, base_records,
        "merged {snap_kind:?}->{resume_kind:?} stream diverged"
    );
}

#[test]
fn heap_ordered_snapshot_resumes_byte_identically_under_the_wheel_kernel() {
    // Snapshots written before the timing-wheel rewrite were produced
    // by the binary-heap kernel. The container stores the queue in
    // kernel-agnostic pop order, so such a snapshot must be accepted by
    // the wheel kernel with a byte-identical continuation — never a
    // silent divergence.
    assert_cross_kernel_resume(
        37,
        "heap-to-wheel.snap",
        QueueKind::BinaryHeap,
        QueueKind::TimingWheel,
    );
}

#[test]
fn wheel_snapshot_resumes_byte_identically_under_both_kernels() {
    // The new kernel's own snapshots resume under itself...
    assert_cross_kernel_resume(
        41,
        "wheel-to-wheel.snap",
        QueueKind::TimingWheel,
        QueueKind::TimingWheel,
    );
    // ...and remain readable by the differential heap oracle.
    assert_cross_kernel_resume(
        41,
        "wheel-to-heap.snap",
        QueueKind::TimingWheel,
        QueueKind::BinaryHeap,
    );
}

// ------------------------------------------------------------------
// SPS router: sequential checkpointed runner vs threaded run_streamed.
// ------------------------------------------------------------------

fn sps_setup() -> (SpsRouter, SpsWorkload, SimTime, LiveOptions) {
    let cfg = RouterConfig::small();
    let router = SpsRouter::new(cfg.clone(), SplitPattern::Striped).expect("valid config");
    let w = SpsWorkload::uniform(cfg.ribbons, 0.8, 0xC0FF);
    let opts = LiveOptions {
        period: PERIOD,
        sample_one_in: 64,
    };
    (router, w, SimTime::from_ns(40_000), opts)
}

#[test]
fn sps_checkpointed_runner_matches_threaded_stream_and_report() {
    let (router, w, horizon, opts) = sps_setup();
    let mut base = MemorySink::new();
    let base_report = router.run_streamed(&w, horizon, &FaultPlan::default(), opts, &mut base);

    let mut sink = MemorySink::new();
    let snapshots = Cell::new(0u64);
    let report = router
        .run_streamed_checkpointed(
            &w,
            horizon,
            &FaultPlan::default(),
            opts,
            &mut sink,
            None,
            4,
            &mut || false,
            &mut |_, _| {
                snapshots.set(snapshots.get() + 1);
                Ok(())
            },
        )
        .expect("checkpointed run")
        .expect("ran to completion");
    assert!(snapshots.get() > 0, "no snapshots were taken");
    assert_eq!(json(&report), json(&base_report), "reports diverged");
    assert_eq!(
        sink.records(),
        base.records(),
        "checkpointed stream diverged from the threaded stream"
    );
}

#[test]
fn sps_interrupted_mid_run_resumes_byte_identically() {
    let (router, w, horizon, opts) = sps_setup();
    let mut base = MemorySink::new();
    let base_report = router.run_streamed(&w, horizon, &FaultPlan::default(), opts, &mut base);

    // Interrupt after a few snapshots; keep the last snapshot and the
    // count of records already replayed into the driver sink.
    let mut partial = MemorySink::new();
    let taken = Cell::new(0u64);
    let last: RefCell<Option<(Value, u64)>> = RefCell::new(None);
    let outcome = router
        .run_streamed_checkpointed(
            &w,
            horizon,
            &FaultPlan::default(),
            opts,
            &mut partial,
            None,
            3,
            &mut || taken.get() >= 4,
            &mut |state, records_done| {
                taken.set(taken.get() + 1);
                *last.borrow_mut() = Some((state.clone(), records_done));
                Ok(())
            },
        )
        .expect("interruptible run");
    assert!(outcome.is_none(), "run was not interrupted");
    let (state, records_done) = last.into_inner().expect("a snapshot was taken");

    // The partial driver sink holds exactly the completed planes'
    // replayed records.
    assert_eq!(partial.records().len() as u64, records_done);

    let mut cont = MemorySink::new();
    let report = router
        .run_streamed_checkpointed(
            &w,
            horizon,
            &FaultPlan::default(),
            opts,
            &mut cont,
            Some(&state),
            1_000_000,
            &mut || false,
            &mut |_, _| Ok(()),
        )
        .expect("resumed run")
        .expect("ran to completion");
    assert_eq!(json(&report), json(&base_report), "resumed report diverged");

    let merged: Vec<SinkRecord> = partial
        .records()
        .iter()
        .chain(cont.records().iter())
        .cloned()
        .collect();
    let expected: Vec<SinkRecord> = base.records().iter().cloned().collect();
    assert_eq!(merged, expected, "merged SPS stream diverged");
}

#[test]
fn sps_resume_rejects_a_different_configuration() {
    let (router, w, horizon, opts) = sps_setup();
    let mut sink = MemorySink::new();
    let taken = Cell::new(0u64);
    let last: RefCell<Option<Value>> = RefCell::new(None);
    let outcome = router
        .run_streamed_checkpointed(
            &w,
            horizon,
            &FaultPlan::default(),
            opts,
            &mut sink,
            None,
            3,
            &mut || taken.get() >= 2,
            &mut |state, _| {
                taken.set(taken.get() + 1);
                *last.borrow_mut() = Some(state.clone());
                Ok(())
            },
        )
        .expect("interruptible run");
    assert!(outcome.is_none());
    let state = last.into_inner().expect("a snapshot was taken");

    let mut other_cfg = RouterConfig::small();
    other_cfg.head_frames += 1;
    let other = SpsRouter::new(other_cfg, SplitPattern::Striped).expect("valid config");
    let mut cont = MemorySink::new();
    let err = other
        .run_streamed_checkpointed(
            &w,
            horizon,
            &FaultPlan::default(),
            opts,
            &mut cont,
            Some(&state),
            1_000_000,
            &mut || false,
            &mut |_, _| Ok(()),
        )
        .expect_err("a different configuration must be rejected");
    assert!(
        err.to_string().contains("configuration differs"),
        "unexpected error: {err}"
    );
}
