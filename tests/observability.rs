//! Observability integration suite: the Chrome trace export and the
//! live SLO watchdogs.
//!
//! The trace export contract: `write_chrome_json` emits well-formed
//! trace-event JSON whose tracks are individually time-ordered and
//! whose B/E span pairs are balanced, carrying per-bank HBM command
//! timelines, per-output frame lifecycles, sampled packet spans and
//! per-plane SPS activity lanes — byte-identically across same-seed
//! runs. The watchdog contract: silent on a healthy run, guaranteed to
//! alarm when a `FaultPlan` kills an HBM channel without recovery.

use std::collections::BTreeMap;

use rip_core::{
    FaultKind, FaultPlan, HbmSwitch, LiveOptions, RouterConfig, SpsRouter, SpsWorkload,
};
use rip_integration_tests::source_for;
use rip_photonics::SplitPattern;
use rip_telemetry::{
    ChromeTraceSink, MemorySink, SharedSink, TraceWindow, Watchdog, WatchdogConfig, WatchdogKind,
};
use rip_traffic::TrafficMatrix;
use rip_units::{SimTime, TimeDelta};
use serde::Value;

const PERIOD: TimeDelta = TimeDelta::from_ns(2_000);

/// Render the full Chrome export for one same-seed switch + SPS run.
fn export(seed: u64, window: TraceWindow) -> Vec<u8> {
    let cfg = RouterConfig::small();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let horizon = SimTime::from_ns(20_000);

    let mut sw = HbmSwitch::new(cfg.clone()).expect("valid config");
    sw.enable_chrome_trace(window);
    let staged = SharedSink::new();
    sw.enable_live_telemetry(PERIOD, 64, Box::new(staged.clone()));
    sw.run_source(
        source_for(&cfg, &tm, 0.8, horizon, seed),
        cfg.drain.deadline(horizon),
        &FaultPlan::default(),
    );
    let mut rec = sw.take_chrome_trace().expect("chrome trace enabled");
    let mut chrome = ChromeTraceSink::new(window);
    staged.take().replay_into(&mut chrome);

    let router = SpsRouter::new(cfg.clone(), SplitPattern::Striped).expect("valid config");
    let w = SpsWorkload::uniform(cfg.ribbons, 0.8, seed);
    let opts = LiveOptions {
        period: PERIOD,
        sample_one_in: 64,
    };
    let mut sps = MemorySink::new();
    router.run_streamed(&w, horizon, &FaultPlan::default(), opts, &mut sps);
    sps.replay_into(&mut chrome);

    rec.merge(chrome.into_recorder());
    let mut out = Vec::new();
    rec.write_chrome_json(&mut out).expect("export serializes");
    out
}

fn parse(bytes: &[u8]) -> Value {
    let text = std::str::from_utf8(bytes).expect("export is UTF-8");
    serde_json::parse(text).expect("export is well-formed JSON")
}

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    v.as_object()
        .expect("object")
        .iter()
        .find_map(|(k, val)| (k == key).then_some(val))
        .unwrap_or_else(|| panic!("missing field {key}"))
}

fn opt_field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    v.as_object()?
        .iter()
        .find_map(|(k, val)| (k == key).then_some(val))
}

fn num_u64(v: &Value) -> u64 {
    match v {
        Value::Number(serde::Number::U64(n)) => *n,
        Value::Number(serde::Number::I64(n)) if *n >= 0 => *n as u64,
        other => panic!("expected unsigned number, got {:?}", other.kind()),
    }
}

fn str_of<'a>(v: &'a Value, key: &str) -> &'a str {
    field(v, key).as_str().expect("string field")
}

/// The trace-event validator: well-formed JSON, every track's
/// timestamps non-decreasing, every B/E pair balanced. Returns the
/// events array for content checks.
fn validate(v: &Value) -> &[Value] {
    assert_eq!(str_of(v, "displayTimeUnit"), "ns");
    let events = field(v, "traceEvents").as_array().expect("events array");
    let mut last_ts: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut depth: BTreeMap<(u64, u64), i64> = BTreeMap::new();
    for e in events {
        let ph = str_of(e, "ph");
        if ph == "M" {
            continue;
        }
        let key = (num_u64(field(e, "pid")), num_u64(field(e, "tid")));
        let ts = num_u64(field(e, "ts"));
        if let Some(&prev) = last_ts.get(&key) {
            assert!(
                ts >= prev,
                "track {key:?} went backwards: {prev} -> {ts} ({ph})"
            );
        }
        last_ts.insert(key, ts);
        match ph {
            "B" => *depth.entry(key).or_insert(0) += 1,
            "E" => {
                let d = depth.entry(key).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "track {key:?} has an E with no open B");
            }
            "X" => {
                // Complete events also carry a non-negative duration.
                let _ = num_u64(field(e, "dur"));
            }
            "C" | "i" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    for (key, d) in &depth {
        assert_eq!(*d, 0, "track {key:?} ends with {d} unbalanced B spans");
    }
    events
}

/// The set of track/process names announced by metadata events.
fn metadata_names(events: &[Value]) -> Vec<(String, String)> {
    events
        .iter()
        .filter(|e| str_of(e, "ph") == "M")
        .map(|e| {
            let kind = str_of(e, "name").to_string();
            let name = str_of(field(e, "args"), "name").to_string();
            (kind, name)
        })
        .collect()
}

#[test]
fn chrome_export_is_valid_and_byte_identical_across_same_seed_runs() {
    let a = export(42, TraceWindow::all());
    let b = export(42, TraceWindow::all());
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed Chrome exports are not byte-identical");

    let doc = parse(&a);
    let events = validate(&doc);
    let names = metadata_names(events);
    let has = |kind: &str, name: &str| names.iter().any(|(k, n)| k == kind && n == name);

    // Process groups: the HBM command timeline, the frame lifecycles,
    // the switch's packet spans, and one process per SPS plane.
    for p in ["hbm", "frames", "switch", "plane00", "plane01"] {
        assert!(has("process_name", p), "missing process {p}");
    }
    // Per-bank HBM tracks plus the per-channel tFAW lane.
    for t in ["ch00/b00", "ch00/b01", "ch01/b00", "ch00/tFAW"] {
        assert!(has("thread_name", t), "missing HBM track {t}");
    }
    // Frame-lifecycle lanes for the first output.
    for t in ["out00 fill", "out00 write", "out00 read", "out00 drain"] {
        assert!(has("thread_name", t), "missing frame lane {t}");
    }

    // HBM command spans (X events) actually landed on bank tracks.
    let span_names: Vec<&str> = events
        .iter()
        .filter(|e| str_of(e, "ph") == "X")
        .map(|e| str_of(e, "name"))
        .collect();
    for cmd in ["ACT", "RD", "WR", "PRE"] {
        assert!(
            span_names.contains(&cmd),
            "no {cmd} command span in the export"
        );
    }
    for stage in ["fill", "write", "read", "drain"] {
        assert!(
            span_names.contains(&stage),
            "no frame {stage} span in the export"
        );
    }
    // Sampled packet lifecycles arrive as balanced B/E pairs named pkt.
    let pkt_begins = events
        .iter()
        .filter(|e| str_of(e, "ph") == "B" && str_of(e, "name") == "pkt")
        .count();
    assert!(pkt_begins > 0, "no packet lifecycle spans in the export");
    // Per-plane SPS activity lanes arrive as counter samples.
    assert!(
        events.iter().any(|e| str_of(e, "ph") == "C"),
        "no activity-lane counter samples in the export"
    );
}

#[test]
fn windowed_export_only_records_overlapping_device_spans() {
    let window =
        TraceWindow::new(SimTime::from_ns(5_000), SimTime::from_ns(10_000)).expect("valid window");
    let bytes = export(42, window);
    let doc = parse(&bytes);
    let events = validate(&doc);
    let mut device_spans = 0;
    for e in events {
        if str_of(e, "ph") != "X" {
            continue;
        }
        // Device-side pids (hbm = 1, frames = 2) are window-filtered at
        // capture: every complete span must overlap [start, end).
        if num_u64(field(e, "pid")) > 2 {
            continue;
        }
        let ts = num_u64(field(e, "ts"));
        let end = ts + num_u64(field(e, "dur"));
        assert!(
            ts < window.end().as_ps() && end >= window.start().as_ps(),
            "span [{ts}, {end}] lies outside the recording window"
        );
        device_spans += 1;
    }
    assert!(device_spans > 0, "window recorded no device spans at all");
    // The windowed export is also deterministic.
    assert_eq!(bytes, export(42, window));
}

#[test]
fn trace_window_rejects_malformed_specs() {
    assert!(TraceWindow::parse("1000:2000").is_ok());
    for bad in ["", ":", "5", "2000:1000", "7:7", "a:b", "10:twenty"] {
        assert!(
            TraceWindow::parse(bad).is_err(),
            "window spec {bad:?} should be rejected"
        );
    }
}

/// Run the switch live with the watchdogs teed in, under `plan`.
fn watched_run(plan: &FaultPlan) -> Vec<rip_telemetry::WatchdogEvent> {
    let cfg = RouterConfig::resilience_small();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let horizon = SimTime::from_ns(60_000);
    let mut sw = HbmSwitch::new(cfg.clone()).expect("valid config");
    let (wd, handle) = Watchdog::new(WatchdogConfig::default(), SharedSink::new());
    sw.enable_live_telemetry(PERIOD, 64, Box::new(wd));
    sw.run_source(
        source_for(&cfg, &tm, 0.5, horizon, 42),
        cfg.drain.deadline(horizon),
        plan,
    );
    handle.events()
}

#[test]
fn watchdog_is_silent_on_a_healthy_run() {
    let events = watched_run(&FaultPlan::default());
    assert!(
        events.is_empty(),
        "healthy run tripped watchdogs: {events:?}"
    );
}

#[test]
fn watchdog_alarms_under_an_unrecovered_channel_fault() {
    let plan = FaultPlan::new().inject(
        SimTime::from_ns(15_000),
        FaultKind::HbmChannelDown { channel: 0 },
    );
    let events = watched_run(&plan);
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, WatchdogKind::DegradedCapacity { dead_channels } if dead_channels > 0.0)),
        "channel fault did not raise a degraded-capacity alarm: {events:?}"
    );
}

#[test]
fn opt_field_distinguishes_missing_from_present() {
    // Guard for the validator helpers themselves: `dur` is present on X
    // events and absent on B/E events.
    let mut rec = rip_telemetry::TraceRecorder::new(TraceWindow::all());
    rec.complete(1, 0, "span", SimTime::from_ns(1), SimTime::from_ns(2));
    rec.begin(1, 1, "pair", SimTime::from_ns(1));
    rec.end(1, 1, "pair", SimTime::from_ns(3));
    let mut bytes = Vec::new();
    rec.write_chrome_json(&mut bytes).expect("serializes");
    let doc = parse(&bytes);
    let events = validate(&doc);
    let x = events
        .iter()
        .find(|e| str_of(e, "ph") == "X")
        .expect("an X event");
    let b = events
        .iter()
        .find(|e| str_of(e, "ph") == "B")
        .expect("a B event");
    assert!(opt_field(x, "dur").is_some());
    assert!(opt_field(b, "dur").is_none());
}
