//! Fleet-collector differential suite.
//!
//! The distributed plane-worker/collector split must be observably
//! indistinguishable from the single-process SPS runner: for every
//! shipped config in `configs/*.json` and several worker partitionings
//! of its planes, pushing each subset through the `rip-fleet/v1` wire
//! protocol and reassembling with the collector must produce a JSONL
//! telemetry stream AND a stitched report byte-identical to
//! `SpsRouter::run_streamed` through the identical watchdog chain —
//! regardless of the order the worker streams arrive in. Horizons are
//! capped so the suite stays fast in debug builds; the merge replays
//! plane-complete streams, so a capped run that diverged would diverge
//! at full length too.

use std::path::PathBuf;

use rip_bench::fleet::{push_worker_stream, CollectError, Collector, FleetJob};
use rip_core::{FaultPlan, LiveOptions, RouterConfig, SpsRouter, SpsWorkload};
use rip_photonics::SplitPattern;
use rip_telemetry::{JsonlSink, Watchdog, WatchdogConfig};
use rip_traffic::{ArrivalProcess, FiberFill, SizeDistribution, TrafficMatrix};
use rip_units::{SimTime, TimeDelta};
use serde::{Deserialize, Serialize, Value};

// ---------------------------------------------------------------------
// Local mirror of the `ripsim` spec schema (the binary does not export
// it): only the fields the fleet runs need, decoded with the same tags
// so every shipped config parses unchanged.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum MatrixSpec {
    Uniform,
    Hotspot { output: usize, fraction: f64 },
    Permutation { shift: usize },
    LogNormal { sigma: f64, seed: u64 },
}

#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum SizeSpec {
    Fixed { bytes: u64 },
    Uniform { min: u64, max: u64 },
    Imix,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum ProcessSpec {
    Poisson,
    Cbr,
    OnOff { mean_burst_packets: f64 },
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SimSpec {
    router: RouterConfig,
    load: f64,
    matrix: MatrixSpec,
    sizes: SizeSpec,
    process: ProcessSpec,
    flows: usize,
    seed: u64,
    horizon_us: u64,
    drain_factor: u64,
    #[serde(default)]
    epoch_ps: Option<u64>,
}

/// Every shipped config file, with its decoded spec.
fn shipped_configs() -> Vec<(String, SimSpec)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../configs");
    let mut names: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("configs/ directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "no configs found in {}", dir.display());
    names
        .into_iter()
        .map(|p| {
            let name = p
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            let text = std::fs::read_to_string(&p).expect("config readable");
            let spec: SimSpec = serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("{name} does not decode as a SimSpec: {e}"));
            (name, spec)
        })
        .collect()
}

/// Debug-profile cap on arrival horizons.
const HORIZON_CAP_US: u64 = 20;

/// The fleet side of a shipped spec: the SPS router, the faithfully
/// translated workload, the capped horizon, the live-stream options
/// and the config echo both sides compare — mirroring what the
/// `ripsim` fleet modes build from the same file.
struct Parts {
    router: SpsRouter,
    switches: usize,
    workload: SpsWorkload,
    horizon: SimTime,
    live: LiveOptions,
    echo: Value,
}

fn fleet_parts(spec: &SimSpec) -> Parts {
    let n = spec.router.ribbons;
    let tm = match spec.matrix {
        MatrixSpec::Uniform => TrafficMatrix::uniform(n, 1.0),
        MatrixSpec::Hotspot { output, fraction } => {
            TrafficMatrix::hotspot(n, 1.0, output, fraction)
        }
        MatrixSpec::Permutation { shift } => {
            let perm: Vec<usize> = (0..n).map(|i| (i + shift) % n).collect();
            TrafficMatrix::permutation(&perm, 1.0).expect("valid permutation")
        }
        MatrixSpec::LogNormal { sigma, seed } => TrafficMatrix::log_normal(n, 1.0, sigma, seed),
    };
    let sizes = match spec.sizes {
        SizeSpec::Fixed { bytes } => {
            SizeDistribution::Fixed(rip_units::DataSize::from_bytes(bytes))
        }
        SizeSpec::Uniform { min, max } => SizeDistribution::Uniform { min, max },
        SizeSpec::Imix => SizeDistribution::Imix,
    };
    let process = match spec.process {
        ProcessSpec::Poisson => ArrivalProcess::Poisson,
        ProcessSpec::Cbr => ArrivalProcess::Cbr,
        ProcessSpec::OnOff { mean_burst_packets } => ArrivalProcess::OnOff { mean_burst_packets },
    };
    Parts {
        router: SpsRouter::new(spec.router.clone(), SplitPattern::Striped)
            .expect("shipped config is valid"),
        switches: spec.router.switches,
        workload: SpsWorkload {
            tm,
            load: spec.load,
            fill: FiberFill::Uniform,
            sizes,
            process,
            flows: spec.flows,
            seed: spec.seed,
        },
        horizon: SimTime::from_ns(spec.horizon_us.min(HORIZON_CAP_US) * 1000),
        live: LiveOptions {
            period: TimeDelta::from_ps(spec.epoch_ps.unwrap_or(2_000_000)),
            sample_one_in: 256,
        },
        echo: spec.to_value(),
    }
}

/// Run the single-process oracle through the collector's exact sink
/// chain (JSONL behind the SLO watchdogs) and return the stream bytes
/// and serialized report.
fn oracle(parts: &Parts) -> (Vec<u8>, String) {
    let mut bytes = Vec::new();
    let report = {
        let sink = JsonlSink::new(&mut bytes);
        let (mut wd, _handle) = Watchdog::new(WatchdogConfig::default(), sink);
        parts.router.run_streamed(
            &parts.workload,
            parts.horizon,
            &FaultPlan::default(),
            parts.live,
            &mut wd,
        )
    };
    (
        bytes,
        serde_json::to_string(&report).expect("report serializes"),
    )
}

/// Push every worker subset of `partition`, ingest the streams in
/// reverse arrival order, and return the merged stream bytes and
/// serialized stitched report.
fn collect(parts: &Parts, partition: &[Vec<usize>]) -> (Vec<u8>, String) {
    let plan = FaultPlan::default();
    let job = FleetJob {
        router: &parts.router,
        workload: &parts.workload,
        plan: &plan,
        horizon: parts.horizon,
        live: parts.live,
        echo: parts.echo.clone(),
    };
    let mut streams: Vec<Vec<u8>> = Vec::new();
    for (worker, subset) in partition.iter().enumerate() {
        streams.push(push_worker_stream(&job, worker as u64, subset, Vec::new()).expect("pushes"));
    }
    let mut collector = Collector::new(parts.echo.clone(), parts.switches);
    for stream in streams.iter().rev() {
        collector.ingest(&stream[..]).expect("stream ingests");
    }
    let mut bytes = Vec::new();
    let report = {
        let sink = JsonlSink::new(&mut bytes);
        let (mut wd, _handle) = Watchdog::new(WatchdogConfig::default(), sink);
        collector
            .finish(&parts.router, parts.horizon, &mut wd)
            .expect("full coverage")
            .report
    };
    (
        bytes,
        serde_json::to_string(&report).expect("report serializes"),
    )
}

#[test]
fn every_partitioning_of_every_shipped_config_matches_the_oracle() {
    for (name, spec) in &shipped_configs() {
        let parts = fleet_parts(spec);
        let planes = parts.switches;
        let (oracle_bytes, oracle_report) = oracle(&parts);
        assert!(
            !oracle_bytes.is_empty(),
            "{name}: oracle stream is empty — the comparison would be vacuous"
        );
        let partitionings: Vec<Vec<Vec<usize>>> = vec![
            // one worker per plane
            (0..planes).map(|p| vec![p]).collect(),
            // two workers owning interleaved halves
            vec![
                (0..planes).step_by(2).collect(),
                (1..planes).step_by(2).collect(),
            ],
        ];
        for partition in &partitionings {
            let (merged, report) = collect(&parts, partition);
            assert_eq!(
                String::from_utf8(merged).expect("utf8"),
                String::from_utf8(oracle_bytes.clone()).expect("utf8"),
                "{name}: merged stream diverges for partition {partition:?}"
            );
            assert_eq!(
                report, oracle_report,
                "{name}: stitched report diverges for partition {partition:?}"
            );
        }
    }
}

#[test]
fn a_worker_killed_mid_stream_is_typed_and_leaves_no_state() {
    let (_, spec) = shipped_configs().remove(0);
    let parts = fleet_parts(&spec);
    let planes = parts.switches;
    let plan = FaultPlan::default();
    let job = FleetJob {
        router: &parts.router,
        workload: &parts.workload,
        plan: &plan,
        horizon: parts.horizon,
        live: parts.live,
        echo: parts.echo.clone(),
    };
    let all: Vec<usize> = (0..planes).collect();
    let full = push_worker_stream(&job, 3, &all, Vec::new()).expect("pushes");
    let mut collector = Collector::new(parts.echo.clone(), planes);
    // Kill the stream mid-frame: the typed error carries the worker id
    // taken from the hello, and nothing is committed.
    match collector.ingest(&full[..full.len() / 2]) {
        Err(CollectError::WorkerTruncated { worker: Some(3) }) => {}
        other => panic!("want WorkerTruncated for worker 3, got {other:?}"),
    }
    assert_eq!(collector.workers_done(), 0);
    assert_eq!(collector.staged_records(), 0);
    assert_eq!(collector.missing_planes(), all);
    // The replacement push commits the whole subset.
    collector.ingest(&full[..]).expect("replacement ingests");
    assert_eq!(collector.missing_planes(), Vec::<usize>::new());
}
