//! Streaming-engine equivalence suite.
//!
//! The pull-based simulation engine must be a drop-in replacement for
//! the materialized-trace pipeline: for the same seed, the serialized
//! reports of both engines must be byte-identical — across uniform,
//! hotspot and faulted workloads, at the single-switch level, through
//! the SPS front end (live generators, no trace), in the OQ-mimic
//! comparison and in the ideal-OQ baseline. A final soak property
//! checks the payoff: the streaming engine's working set (peak
//! in-flight packets) stays flat as the horizon grows.

use proptest::prelude::*;
use rip_baselines::IdealOqSwitch;
use rip_core::{
    FaultKind, FaultPlan, HbmSwitch, MimicChecker, RouterConfig, SpsRouter, SpsWorkload,
};
use rip_integration_tests::{source_for, trace_for};
use rip_photonics::SplitPattern;
use rip_traffic::{Packet, PacketSource, ReplaySource, TrafficMatrix};
use rip_units::SimTime;

fn report_json(r: &rip_core::SwitchReport) -> String {
    serde_json::to_string(r).expect("report serializes")
}

/// Batch oracle vs streaming engine on the same replayed trace.
fn assert_engines_agree(cfg: &RouterConfig, trace: &[Packet], horizon: SimTime, plan: &FaultPlan) {
    let mut batch = HbmSwitch::new(cfg.clone()).expect("valid config");
    let rb = batch.run_preloaded(trace, horizon, plan);

    let mut streaming = HbmSwitch::new(cfg.clone()).expect("valid config");
    streaming.run_source(ReplaySource::new(trace), horizon, plan);
    let rs = streaming.into_report();

    assert_eq!(
        report_json(&rb),
        report_json(&rs),
        "streaming and batch engines diverged"
    );
}

#[test]
fn streaming_matches_batch_on_uniform_traffic() {
    let cfg = RouterConfig::small();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let horizon = SimTime::from_ns(60_000);
    let trace = trace_for(&cfg, &tm, 0.8, horizon, 42);
    assert!(!trace.is_empty());
    assert_engines_agree(
        &cfg,
        &trace,
        cfg.drain.deadline(horizon),
        &FaultPlan::default(),
    );
}

#[test]
fn streaming_matches_batch_on_hotspot_traffic() {
    let cfg = RouterConfig::small();
    let tm = TrafficMatrix::hotspot(cfg.ribbons, 1.0, 0, 0.5);
    let horizon = SimTime::from_ns(60_000);
    let trace = trace_for(&cfg, &tm, 0.9, horizon, 7);
    assert_engines_agree(
        &cfg,
        &trace,
        cfg.drain.deadline(horizon),
        &FaultPlan::default(),
    );
}

#[test]
fn streaming_matches_batch_under_faults() {
    let cfg = RouterConfig::resilience_small();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let horizon = SimTime::from_ns(80_000);
    let trace = trace_for(&cfg, &tm, 0.7, horizon, 17);
    let plan = FaultPlan::new()
        .inject(
            SimTime::from_ns(20_000),
            FaultKind::HbmChannelDown { channel: 1 },
        )
        .recover(
            SimTime::from_ns(50_000),
            FaultKind::HbmChannelDown { channel: 1 },
        )
        .inject(
            SimTime::from_ns(30_000),
            FaultKind::HbmBankStuck {
                channel: 0,
                bank: 2,
            },
        );
    plan.validate(&cfg).expect("plan valid");
    assert_engines_agree(&cfg, &trace, SimTime::from_ns(400_000), &plan);
}

#[test]
fn live_source_matches_materialized_trace_end_to_end() {
    // The strongest single-switch form: the streaming run never sees a
    // trace at all — packets come straight out of the generators.
    let cfg = RouterConfig::small();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let horizon = SimTime::from_ns(60_000);
    let deadline = cfg.drain.deadline(horizon);

    let trace = trace_for(&cfg, &tm, 0.8, horizon, 42);
    let mut batch = HbmSwitch::new(cfg.clone()).expect("valid config");
    let rb = batch.run_preloaded(&trace, deadline, &FaultPlan::default());

    let src = source_for(&cfg, &tm, 0.8, horizon, 42);
    let mut streaming = HbmSwitch::new(cfg.clone()).expect("valid config");
    streaming.run_source(src, deadline, &FaultPlan::default());
    let rs = streaming.into_report();

    assert_eq!(report_json(&rb), report_json(&rs));
}

#[test]
fn plane_source_yields_exactly_the_split_traffic() {
    let cfg = RouterConfig::resilience_small();
    let router = SpsRouter::new(cfg.clone(), SplitPattern::Striped).expect("valid config");
    let w = SpsWorkload::uniform(cfg.ribbons, 0.6, 11);
    let horizon = SimTime::from_ns(50_000);
    let per_switch = router.split_traffic(&w, horizon);
    for (plane, batch) in per_switch.iter().enumerate() {
        let mut src = router.plane_source(&w, horizon, &FaultPlan::default(), plane);
        let mut streamed = Vec::new();
        while let Some(p) = src.next_packet() {
            streamed.push(p);
        }
        assert_eq!(
            &streamed, batch,
            "plane {plane} stream diverged from the batch split"
        );
        assert_eq!(src.front_end_dropped_packets(), 0);
    }
}

#[test]
fn plane_source_matches_faulted_split_including_drop_totals() {
    let cfg = RouterConfig::resilience_small();
    let router = SpsRouter::new(cfg.clone(), SplitPattern::Striped).expect("valid config");
    let w = SpsWorkload::uniform(cfg.ribbons, 0.6, 13);
    let horizon = SimTime::from_ns(60_000);
    let plan = FaultPlan::new()
        .inject(
            SimTime::from_ns(15_000),
            FaultKind::WavelengthLoss {
                ribbon: 0,
                lambda: 1,
            },
        )
        .recover(
            SimTime::from_ns(40_000),
            FaultKind::WavelengthLoss {
                ribbon: 0,
                lambda: 1,
            },
        );
    plan.validate(&cfg).expect("plan valid");

    let (per_switch, batch_drops, batch_dropped_bytes) =
        router.split_traffic_faulted(&w, horizon, &plan);
    let mut fe_drops = 0u64;
    let mut fe_bytes = rip_units::DataSize::ZERO;
    for (plane, batch) in per_switch.iter().enumerate() {
        let mut src = router.plane_source(&w, horizon, &plan, plane);
        let mut streamed = Vec::new();
        while let Some(p) = src.next_packet() {
            streamed.push(p);
        }
        assert_eq!(
            &streamed, batch,
            "plane {plane} faulted stream diverged from the batch split"
        );
        fe_drops += src.front_end_dropped_packets();
        fe_bytes += src.front_end_dropped();
    }
    assert!(batch_drops > 0, "fault window should drop something");
    assert_eq!(fe_drops, batch_drops);
    assert_eq!(fe_bytes, batch_dropped_bytes);
}

#[test]
fn sps_streaming_run_matches_per_plane_batch_runs() {
    // The full router path (crossbeam threads fed by PlaneSource) must
    // equal running each plane's batch trace through the batch engine.
    let cfg = RouterConfig::resilience_small();
    let router = SpsRouter::new(cfg.clone(), SplitPattern::Striped).expect("valid config");
    let w = SpsWorkload::uniform(cfg.ribbons, 0.7, 19);
    let horizon = SimTime::from_ns(40_000);
    let r = router.run(&w, horizon);

    let per_switch = router.split_traffic(&w, horizon);
    let deadline = cfg.drain.deadline(horizon);
    for (plane, trace) in per_switch.iter().enumerate() {
        let mut sw = HbmSwitch::new(cfg.clone()).expect("valid config");
        let batch = sw.run_preloaded(trace, deadline, &FaultPlan::default());
        assert_eq!(
            report_json(&batch),
            report_json(&r.switches[plane].report),
            "plane {plane} SPS report diverged from its batch run"
        );
    }
}

#[test]
fn mimic_checker_matches_inline_batch_reference() {
    let cfg = RouterConfig::small();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let horizon = SimTime::from_ns(40_000);
    let deadline = SimTime::from_ns(300_000);
    let trace = trace_for(&cfg, &tm, 0.7, horizon, 23);

    let streamed = MimicChecker::new(cfg.clone()).run(&trace, deadline);

    // Inline batch reference: ideal shadow over the trace, batch engine
    // for the HBM side, same lag definition.
    let mut ideal_sw = IdealOqSwitch::new(cfg.ribbons, cfg.port_rate());
    ideal_sw.run(&trace);
    let ideal = ideal_sw.departure_map();
    let mut sw = HbmSwitch::new(cfg).expect("valid config");
    let report = sw.run_preloaded(&trace, deadline, &FaultPlan::default());
    let mut compared = 0u64;
    let mut max_lag = rip_units::TimeDelta::ZERO;
    for d in &report.departures {
        let Some(&idep) = ideal.get(&d.packet) else {
            continue;
        };
        max_lag = max_lag.max(d.time.saturating_since(idep));
        compared += 1;
    }
    assert!(compared > 100);
    assert_eq!(streamed.compared, compared);
    assert_eq!(streamed.max_lag, max_lag);
}

#[test]
fn oq_run_source_matches_run() {
    let cfg = RouterConfig::small();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let horizon = SimTime::from_ns(40_000);
    let trace = trace_for(&cfg, &tm, 0.8, horizon, 29);

    let mut batch = IdealOqSwitch::new(cfg.ribbons, cfg.port_rate());
    let db = batch.run(&trace);
    let mut streaming = IdealOqSwitch::new(cfg.ribbons, cfg.port_rate());
    let ds = streaming.run_source(source_for(&cfg, &tm, 0.8, horizon, 29));
    assert_eq!(db, ds);
}

#[test]
fn peak_in_flight_stays_flat_as_horizon_grows() {
    let cfg = RouterConfig::small();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let run_at = |h: SimTime| {
        let mut sw = HbmSwitch::new(cfg.clone()).expect("valid config");
        sw.run_source(
            source_for(&cfg, &tm, 0.8, h, 31),
            cfg.drain.deadline(h),
            &FaultPlan::default(),
        );
        sw.into_report()
    };
    let short = run_at(SimTime::from_ns(30_000));
    let long = run_at(SimTime::from_ns(90_000));
    assert!(
        long.offered_packets > 2 * short.offered_packets,
        "offered did not scale: {} -> {}",
        short.offered_packets,
        long.offered_packets
    );
    assert!(
        long.peak_in_flight_packets <= 2 * short.peak_in_flight_packets + 64,
        "in-flight working set grew with the horizon: {} -> {}",
        short.peak_in_flight_packets,
        long.peak_in_flight_packets
    );
    assert!(short.peak_in_flight_packets > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Byte identity holds for arbitrary seeds, loads and hotspot
    /// skews, not just the hand-picked cases above.
    #[test]
    fn streaming_equals_batch_for_random_workloads(
        seed in any::<u64>(),
        load in 0.3f64..0.95,
        hot in 0usize..2,
    ) {
        let cfg = RouterConfig::small();
        let tm = if hot == 0 {
            TrafficMatrix::uniform(cfg.ribbons, 1.0)
        } else {
            TrafficMatrix::hotspot(cfg.ribbons, 1.0, 0, 0.4)
        };
        let horizon = SimTime::from_ns(25_000);
        let deadline = cfg.drain.deadline(horizon);
        let trace = trace_for(&cfg, &tm, load, horizon, seed);

        let mut batch = HbmSwitch::new(cfg.clone()).expect("valid config");
        let rb = batch.run_preloaded(&trace, deadline, &FaultPlan::default());
        let mut streaming = HbmSwitch::new(cfg.clone()).expect("valid config");
        streaming.run_source(source_for(&cfg, &tm, load, horizon, seed), deadline, &FaultPlan::default());
        let rs = streaming.into_report();
        prop_assert_eq!(report_json(&rb), report_json(&rs));
    }
}
