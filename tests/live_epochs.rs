//! Live epoch-streaming integration suite.
//!
//! The live telemetry path must satisfy three cross-crate contracts:
//!
//! * **Determinism** — two same-seed live runs emit byte-identical
//!   JSONL streams (switch-level and through the threaded SPS router,
//!   whose per-plane buffers are replayed in plane order regardless of
//!   thread schedule).
//! * **Losslessness** — replaying every emitted epoch delta onto an
//!   empty registry reconstructs the end-of-run report metrics
//!   byte-identically, per plane and merged.
//! * **Non-interference** — enabling streaming never changes what the
//!   simulation computes: the live run's report is the silent run's
//!   report plus the per-epoch live gauge series.

use std::collections::VecDeque;

use rip_baselines::IdealOqSwitch;
use rip_core::{FaultPlan, HbmSwitch, LiveOptions, RouterConfig, SpsRouter, SpsWorkload};
use rip_integration_tests::source_for;
use rip_photonics::SplitPattern;
use rip_telemetry::{JsonlSink, MemorySink, MetricsRegistry, SharedSink, SinkRecord};
use rip_traffic::TrafficMatrix;
use rip_units::{SimTime, TimeDelta};

const PERIOD: TimeDelta = TimeDelta::from_ns(2_000);

fn json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("serializes")
}

/// One live switch run at the standard test workload; returns the
/// staged records and the report.
fn live_switch_run(seed: u64) -> (MemorySink, rip_core::SwitchReport) {
    let cfg = RouterConfig::small();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let horizon = SimTime::from_ns(40_000);
    let staged = SharedSink::new();
    let mut sw = HbmSwitch::new(cfg.clone()).expect("valid config");
    sw.enable_live_telemetry(PERIOD, 64, Box::new(staged.clone()));
    sw.run_source(
        source_for(&cfg, &tm, 0.8, horizon, seed),
        cfg.drain.deadline(horizon),
        &FaultPlan::default(),
    );
    (staged.take(), sw.into_report())
}

/// Rebuild a registry from the `Epoch` records of one source.
fn rebuild(records: &VecDeque<SinkRecord>, source: &str) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    for rec in records {
        if let SinkRecord::Epoch {
            source: s, delta, ..
        } = rec
        {
            if s == source {
                reg.apply_delta(delta);
            }
        }
    }
    reg
}

/// The `run_end` totals of one source.
fn totals<'a>(records: &'a VecDeque<SinkRecord>, source: &str) -> &'a MetricsRegistry {
    records
        .iter()
        .find_map(|rec| match rec {
            SinkRecord::RunEnd {
                source: s, totals, ..
            } if s == source => Some(totals),
            _ => None,
        })
        .expect("stream has a run_end record")
}

#[test]
fn switch_stream_is_deterministic_and_reconstructs_report() {
    let (m1, r1) = live_switch_run(42);
    let (m2, r2) = live_switch_run(42);
    assert_eq!(m1.records(), m2.records(), "same-seed streams diverged");
    assert_eq!(json(&r1), json(&r2));

    let epochs = m1
        .records()
        .iter()
        .filter(|r| matches!(r, SinkRecord::Epoch { .. }))
        .count();
    let spans = m1
        .records()
        .iter()
        .filter(|r| matches!(r, SinkRecord::Span { .. }))
        .count();
    assert!(epochs >= 4, "expected several epochs, got {epochs}");
    assert!(spans > 0, "expected sampled lifecycle spans");

    // Replaying every epoch delta reconstructs the report registry
    // byte-identically; the run_end totals agree.
    let rebuilt = rebuild(m1.records(), "switch");
    assert_eq!(json(&rebuilt), json(&r1.metrics));
    assert_eq!(json(totals(m1.records(), "switch")), json(&r1.metrics));
}

#[test]
fn switch_jsonl_stream_is_byte_identical_across_runs() {
    let render = || {
        let cfg = RouterConfig::small();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let horizon = SimTime::from_ns(30_000);
        let mut buf: Vec<u8> = Vec::new();
        {
            let staged = SharedSink::new();
            let mut sw = HbmSwitch::new(cfg.clone()).expect("valid config");
            sw.enable_live_telemetry(PERIOD, 64, Box::new(staged.clone()));
            sw.run_source(
                source_for(&cfg, &tm, 0.8, horizon, 7),
                cfg.drain.deadline(horizon),
                &FaultPlan::default(),
            );
            let mut sink = JsonlSink::new(&mut buf);
            staged.take().replay_into(&mut sink);
        }
        buf
    };
    let a = render();
    let b = render();
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed JSONL streams are not byte-identical");
}

#[test]
fn live_report_is_silent_report_plus_gauge_series() {
    let cfg = RouterConfig::small();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let horizon = SimTime::from_ns(40_000);
    let run = |live: bool| {
        let mut sw = HbmSwitch::new(cfg.clone()).expect("valid config");
        if live {
            sw.enable_live_telemetry(PERIOD, 64, Box::new(SharedSink::new()));
        }
        sw.run_source(
            source_for(&cfg, &tm, 0.8, horizon, 42),
            cfg.drain.deadline(horizon),
            &FaultPlan::default(),
        );
        sw.into_report()
    };
    let silent = run(false);
    let live = run(true);

    // The simulation outcome is untouched...
    assert_eq!(silent.offered_packets, live.offered_packets);
    assert_eq!(silent.delivered_packets, live.delivered_packets);
    assert_eq!(
        json(silent.metrics.counters()),
        json(live.metrics.counters())
    );
    assert_eq!(
        json(silent.metrics.histograms()),
        json(live.metrics.histograms())
    );
    // ...and the only registry additions are the live gauge series.
    for (name, g) in silent.metrics.gauges() {
        assert_eq!(
            live.metrics.gauge(name),
            Some(*g),
            "live run changed gauge {name}"
        );
    }
    let extra: Vec<&str> = live
        .metrics
        .gauges()
        .keys()
        .filter(|n| !silent.metrics.gauges().contains_key(*n))
        .map(String::as_str)
        .collect();
    assert_eq!(
        extra,
        [
            "switch.capacity.dead_channels",
            "switch.feeder.pulled_packets",
            "switch.packets.delivered",
            "switch.packets.dropped",
            "switch.packets.in_flight",
            "switch.packets.offered",
            "switch.packets.peak_in_flight",
        ]
    );
}

#[test]
fn sps_per_plane_deltas_reconstruct_merged_report() {
    let cfg = RouterConfig::small();
    let router = SpsRouter::new(cfg.clone(), SplitPattern::Striped).expect("valid config");
    let w = SpsWorkload::uniform(cfg.ribbons, 0.8, 19);
    let horizon = SimTime::from_ns(40_000);
    let opts = LiveOptions {
        period: PERIOD,
        sample_one_in: 64,
    };

    let mut sink = MemorySink::new();
    let r = router.run_streamed(&w, horizon, &FaultPlan::default(), opts, &mut sink);
    let mut sink2 = MemorySink::new();
    let r2 = router.run_streamed(&w, horizon, &FaultPlan::default(), opts, &mut sink2);
    assert_eq!(
        sink.records(),
        sink2.records(),
        "threaded SPS stream is not schedule-independent"
    );
    assert_eq!(json(&r), json(&r2));

    // Per plane: the delta replay equals both the plane's own run_end
    // totals and the per-switch report registry.
    let mut merged = MetricsRegistry::new();
    for plane in 0..cfg.switches {
        let source = format!("plane{plane:02}");
        let rebuilt = rebuild(sink.records(), &source);
        assert_eq!(json(&rebuilt), json(totals(sink.records(), &source)));
        assert_eq!(
            json(&rebuilt),
            json(&r.switches[plane].report.metrics),
            "{source} delta replay diverged from its report"
        );
        merged.merge(&rebuilt);
    }
    // Merging the plane rebuilds in plane order equals the router-level
    // registry and the terminal `sps` run_end record.
    assert_eq!(json(&merged), json(&r.metrics));
    assert_eq!(json(totals(sink.records(), "sps")), json(&r.metrics));
}

#[test]
fn oq_streamed_epochs_match_departures_and_totals() {
    let cfg = RouterConfig::small();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let horizon = SimTime::from_ns(30_000);

    let mut plain = IdealOqSwitch::new(cfg.ribbons, cfg.port_rate());
    let want = plain.run_source(source_for(&cfg, &tm, 0.8, horizon, 29));

    let mut sink = MemorySink::new();
    let mut oq = IdealOqSwitch::new(cfg.ribbons, cfg.port_rate());
    let got = oq.run_source_streamed(source_for(&cfg, &tm, 0.8, horizon, 29), PERIOD, &mut sink);
    assert_eq!(got, want, "streaming changed the OQ departure schedule");
    let rebuilt = rebuild(sink.records(), "oq");
    assert_eq!(json(&rebuilt), json(totals(sink.records(), "oq")));
}
