//! End-to-end integration: the full SPS router (photonic front end →
//! per-switch traces → HBM-switch DES → egress) across split patterns,
//! loads and fault conditions.

use rip_core::{HbmSwitch, RouterConfig, SpsRouter, SpsWorkload};
use rip_integration_tests::trace_for;
use rip_photonics::SplitPattern;
use rip_traffic::{FiberFill, TrafficMatrix};
use rip_units::SimTime;

#[test]
fn sps_uniform_traffic_is_lossless_across_patterns() {
    let cfg = RouterConfig::small();
    for pattern in [
        SplitPattern::Sequential,
        SplitPattern::Striped,
        SplitPattern::PseudoRandom { seed: 11 },
    ] {
        let router = SpsRouter::new(cfg.clone(), pattern).unwrap();
        let w = SpsWorkload::uniform(cfg.ribbons, 0.5, 21);
        let r = router.run(&w, SimTime::from_ns(30_000));
        assert!(r.offered.bytes() > 0);
        assert!(
            r.loss_fraction < 1e-3,
            "{pattern:?}: loss {}",
            r.loss_fraction
        );
    }
}

#[test]
fn sequential_split_concentrates_fill_skew_pseudo_random_spreads_it() {
    let cfg = RouterConfig::small();
    let mut w = SpsWorkload::uniform(cfg.ribbons, 0.25, 5);
    w.fill = FiberFill::FirstFilled {
        used: cfg.fibers_per_ribbon / 4,
    };
    let seq = SpsRouter::new(cfg.clone(), SplitPattern::Sequential).unwrap();
    let rnd = SpsRouter::new(cfg.clone(), SplitPattern::PseudoRandom { seed: 3 }).unwrap();
    let horizon = SimTime::from_ns(25_000);
    let r_seq = seq.run(&w, horizon);
    let r_rnd = rnd.run(&w, horizon);
    // Sequential: the lit fibers all feed switch 0 -> imbalance = H.
    assert!(
        r_seq.load_imbalance > cfg.switches as f64 * 0.95,
        "sequential imbalance {}",
        r_seq.load_imbalance
    );
    assert!(
        r_rnd.load_imbalance < r_seq.load_imbalance,
        "pseudo-random {} !< sequential {}",
        r_rnd.load_imbalance,
        r_seq.load_imbalance
    );
}

#[test]
fn every_delivered_packet_was_offered_exactly_once() {
    let cfg = RouterConfig::small();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let trace = trace_for(&cfg, &tm, 0.8, SimTime::from_ns(60_000), 9);
    let sw = HbmSwitch::new(cfg).unwrap();
    let r = sw.run(&trace, SimTime::from_ns(400_000));
    use std::collections::HashSet;
    let offered: HashSet<u64> = trace.iter().map(|p| p.id).collect();
    let mut seen = HashSet::new();
    for d in &r.departures {
        assert!(offered.contains(&d.packet), "unknown packet {}", d.packet);
        assert!(seen.insert(d.packet), "packet {} departed twice", d.packet);
    }
    assert_eq!(seen.len() as u64, r.delivered_packets);
}

#[test]
fn departures_exit_on_the_right_output_in_flow_order() {
    let cfg = RouterConfig::small();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let trace = trace_for(&cfg, &tm, 0.7, SimTime::from_ns(50_000), 13);
    let sw = HbmSwitch::new(cfg.clone()).unwrap();
    let r = sw.run(&trace, SimTime::from_ns(400_000));
    // Check output correctness and per-(input,output) FIFO order.
    use std::collections::HashMap;
    let by_id: HashMap<u64, &rip_traffic::Packet> = trace.iter().map(|p| (p.id, p)).collect();
    let mut deps = r.departures.clone();
    deps.sort_by_key(|d| (d.time, d.packet));
    let mut last: HashMap<(usize, usize), u64> = HashMap::new();
    for d in &deps {
        let p = by_id[&d.packet];
        assert!(d.fiber < cfg.alpha() && d.wavelength < cfg.wavelengths);
        if let Some(&prev) = last.get(&(p.input, p.output)) {
            assert!(
                d.packet > prev,
                "FIFO violated for pair ({}, {})",
                p.input,
                p.output
            );
        }
        last.insert((p.input, p.output), d.packet);
    }
}

#[test]
fn dead_fiber_reduces_only_its_switch_capacity() {
    let cfg = RouterConfig::small();
    let router = SpsRouter::new(cfg.clone(), SplitPattern::Sequential).unwrap();
    let mut fe = router.front_end().clone();
    let healthy = fe.effective_switch_capacity();
    fe.set_fault(0, 0, rip_photonics::LaneFault::Dead);
    let faulty = fe.effective_switch_capacity();
    // Fiber (0,0) feeds switch 0 under the sequential split.
    assert!(faulty[0].bps() < healthy[0].bps());
    for s in 1..cfg.switches {
        assert_eq!(faulty[s], healthy[s]);
    }
}

#[test]
fn reference_configuration_is_internally_consistent() {
    let cfg = RouterConfig::reference();
    cfg.validate().expect("reference config");
    // The HBM group exactly covers the per-switch memory I/O.
    assert_eq!(cfg.hbm_peak(), cfg.per_switch_memory_io());
    // Full-size switch constructs (but is too large to simulate here).
    let sw = HbmSwitch::new(cfg).expect("reference switch constructs");
    assert_eq!(sw.config().ribbons, 16);
}

#[test]
fn fib_routed_traffic_flows_through_the_switch() {
    // The §3.2 ➀ forwarding step: outputs come from real LPM lookups
    // against a synthetic core RIB instead of the generator's TM row.
    let cfg = RouterConfig::small();
    let rib = rip_fib::SyntheticRib::generate(20_000, cfg.ribbons, 77);
    let table = rib.stride_table(16);
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let raw = trace_for(&cfg, &tm, 0.6, SimTime::from_ns(40_000), 23);
    let routed = rip_fib::assign_outputs(&raw, &table);
    assert_eq!(routed.len(), raw.len(), "default route resolves everything");
    // Outputs agree with the reference trie.
    let trie = rib.trie();
    for p in routed.iter().take(500) {
        assert_eq!(p.output, trie.lookup(p.flow.dst_ip).unwrap().1 as usize);
    }
    let sw = HbmSwitch::new(cfg).unwrap();
    let r = sw.run(&routed, SimTime::from_ns(400_000));
    assert!(r.delivery_fraction > 0.995, "{}", r.delivery_fraction);
}

#[test]
fn fault_injected_trace_still_delivers_survivors() {
    let cfg = RouterConfig::small();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let raw = trace_for(&cfg, &tm, 0.6, SimTime::from_ns(40_000), 29);
    let injector = rip_traffic::FaultInjector::new(0.15, 0.1, 3);
    let (degraded, summary) = injector.apply(&raw);
    assert!(summary.dropped > 0 && summary.corrupted > 0);
    let sw = HbmSwitch::new(cfg).unwrap();
    let r = sw.run(&degraded, SimTime::from_ns(400_000));
    assert_eq!(r.offered_packets as usize, degraded.len());
    assert!(r.delivery_fraction > 0.995, "{}", r.delivery_fraction);
}

#[test]
fn striped_datacenter_variant_runs_end_to_end() {
    let mut cfg = RouterConfig::small();
    cfg.stripe_channels = Some(4);
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let trace = trace_for(&cfg, &tm, 0.8, SimTime::from_ns(60_000), 17);
    let sw = HbmSwitch::new(cfg).unwrap();
    let r = sw.run(&trace, SimTime::from_ns(400_000));
    assert!(r.delivery_fraction > 0.995, "{}", r.delivery_fraction);
}
