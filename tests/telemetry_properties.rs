//! Property-based tests for the telemetry layer: histogram merge is a
//! commutative monoid, quantile bounds bracket the exact nearest-rank
//! statistic, counter totals are invariant under repartitioning work
//! across any number of per-plane registries, and the epoch
//! snapshot/delta algebra composes — merging adjacent deltas equals
//! the spanning delta, and replaying every delta of a run rebuilds the
//! final registry byte-identically.

use proptest::prelude::*;
use rip_telemetry::{LogHistogram, MetricsRegistry, Snapshot};
use rip_units::SimTime;

fn hist(values: &[f64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Positive finite samples spanning ~15 orders of magnitude.
fn sample() -> impl Strategy<Value = f64> {
    (1e-3f64..1e12).prop_map(|v| v)
}

proptest! {
    /// Merging histograms is commutative: recording two sample sets in
    /// either merge order yields bit-identical state (no stored float
    /// sums whose accumulation order could differ).
    #[test]
    fn histogram_merge_is_commutative(
        a in prop::collection::vec(sample(), 0..200),
        b in prop::collection::vec(sample(), 0..200),
    ) {
        let (ha, hb) = (hist(&a), hist(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }
}

proptest! {
    /// Merging histograms is associative — the property that makes the
    /// per-plane merge independent of how planes are grouped.
    #[test]
    fn histogram_merge_is_associative(
        a in prop::collection::vec(sample(), 0..100),
        b in prop::collection::vec(sample(), 0..100),
        c in prop::collection::vec(sample(), 0..100),
    ) {
        let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }
}

proptest! {
    /// Merging equals recording everything into one histogram.
    #[test]
    fn histogram_merge_equals_bulk_record(
        a in prop::collection::vec(sample(), 0..200),
        b in prop::collection::vec(sample(), 0..200),
    ) {
        let mut merged = hist(&a);
        merged.merge(&hist(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, hist(&all));
    }
}

proptest! {
    /// `quantile_bounds` brackets the exact nearest-rank order
    /// statistic of the recorded samples (the log-bucket guarantee:
    /// within one bucket, i.e. <= 25% relative error).
    #[test]
    fn quantile_bounds_bracket_exact_order_statistic(
        values in prop::collection::vec(sample(), 1..300),
        q in 0.0f64..1.0,
    ) {
        let h = hist(&values);
        let mut sorted = values.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let rank = (q * (sorted.len() - 1) as f64).round() as usize;
        let exact = sorted[rank];
        let (lo, hi) = h.quantile_bounds(q).expect("non-empty");
        prop_assert!(
            lo <= exact && exact <= hi,
            "exact {exact} outside bucket [{lo}, {hi}] at q={q}"
        );
    }
}

proptest! {
    /// Counter totals are invariant under partitioning the increments
    /// across `k` per-plane registries and merging — the invariant the
    /// SPS report relies on when the plane count changes.
    #[test]
    fn counter_totals_invariant_under_repartitioning(
        incs in prop::collection::vec((0usize..4, 1u64..1000), 1..200),
        k in 1usize..6,
    ) {
        let names = ["a", "b", "c", "d"];
        let mut whole = MetricsRegistry::new();
        for &(n, by) in &incs {
            whole.inc(names[n], by);
        }
        let mut parts: Vec<MetricsRegistry> =
            (0..k).map(|_| MetricsRegistry::new()).collect();
        for (i, &(n, by)) in incs.iter().enumerate() {
            parts[i % k].inc(names[n], by);
        }
        let mut merged = MetricsRegistry::new();
        for p in &parts {
            merged.merge(p);
        }
        for n in names {
            prop_assert_eq!(merged.counter(n), whole.counter(n));
        }
    }
}

proptest! {
    /// Full-registry merge (counters + gauges + histograms) is
    /// order-independent.
    #[test]
    fn registry_merge_is_commutative(
        a in prop::collection::vec(sample(), 0..100),
        b in prop::collection::vec(sample(), 0..100),
        ta in 0u64..1_000_000,
        tb in 0u64..1_000_000,
    ) {
        let mut ra = MetricsRegistry::new();
        for &v in &a {
            ra.observe("h", v);
            ra.inc("n", 1);
        }
        ra.set_gauge("g", SimTime::from_ns(ta), a.len() as f64);
        let mut rb = MetricsRegistry::new();
        for &v in &b {
            rb.observe("h", v);
            rb.inc("n", 1);
        }
        rb.set_gauge("g", SimTime::from_ns(tb), b.len() as f64);
        let mut ab = ra.clone();
        ab.merge(&rb);
        let mut ba = rb.clone();
        ba.merge(&ra);
        prop_assert_eq!(ab, ba);
    }
}

/// One random registry mutation, covering all three metric kinds —
/// including the NaN samples the histogram reconciliation rejects.
#[derive(Debug, Clone)]
enum Op {
    Inc(usize, u64),
    Observe(usize, f64),
    Gauge(usize, u64, f64),
}

const OP_NAMES: [&str; 3] = ["x", "y", "z"];

fn op() -> impl Strategy<Value = Op> {
    (
        (0u8..12, 0usize..3, 1u64..100),
        (1e-3f64..1e12, 0u64..1_000_000, -1e6f64..1e6),
    )
        .prop_map(|((kind, n, by), (s, t, v))| match kind {
            0..=4 => Op::Inc(n, by),
            5..=8 => Op::Observe(n, s),
            9 => Op::Observe(n, f64::NAN),
            _ => Op::Gauge(n, t, v),
        })
}

fn apply(r: &mut MetricsRegistry, op: &Op) {
    match *op {
        Op::Inc(n, by) => r.inc(OP_NAMES[n], by),
        Op::Observe(n, v) => r.observe(OP_NAMES[n], v),
        Op::Gauge(n, t, v) => r.set_gauge(OP_NAMES[n], SimTime::from_ns(t), v),
    }
}

proptest! {
    /// The epoch-delta merge composes: for any three snapshots a, b, c
    /// of one evolving registry, `delta(a,b) ⊕ delta(b,c) ==
    /// delta(a,c)` — so a consumer may coarsen the stream by folding
    /// adjacent epochs without changing what they describe.
    #[test]
    fn delta_merge_equals_spanning_delta(
        seg1 in prop::collection::vec(op(), 0..60),
        seg2 in prop::collection::vec(op(), 0..60),
    ) {
        let mut r = MetricsRegistry::new();
        let a = r.snapshot(SimTime::from_ns(100));
        for o in &seg1 {
            apply(&mut r, o);
        }
        let b = r.snapshot(SimTime::from_ns(200));
        for o in &seg2 {
            apply(&mut r, o);
        }
        let c = r.snapshot(SimTime::from_ns(300));
        let mut ab = b.delta_since(&a);
        ab.merge(&c.delta_since(&b));
        prop_assert_eq!(ab, c.delta_since(&a));
    }
}

proptest! {
    /// Replaying every epoch delta of a run, in order, onto an empty
    /// registry reconstructs the final registry byte-identically —
    /// the lossless-stream guarantee the live exporters rely on.
    #[test]
    fn replaying_deltas_reconstructs_final_registry(
        segs in prop::collection::vec(prop::collection::vec(op(), 0..40), 1..8),
    ) {
        let mut r = MetricsRegistry::new();
        let mut prev = Snapshot::empty();
        let mut rebuilt = MetricsRegistry::new();
        for (i, seg) in segs.iter().enumerate() {
            for o in seg {
                apply(&mut r, o);
            }
            let snap = r.snapshot(SimTime::from_ns((i as u64 + 1) * 100));
            rebuilt.apply_delta(&snap.delta_since(&prev));
            prev = snap;
        }
        prop_assert_eq!(&rebuilt, &r);
        prop_assert_eq!(
            serde_json::to_string(&rebuilt).unwrap(),
            serde_json::to_string(&r).unwrap()
        );
    }
}

proptest! {
    /// The fleet merge invariant: partition a run's work across `k`
    /// planes, stream each plane's epochs as deltas, rebuild every
    /// plane's registry from its delta stream alone, and merge the
    /// rebuilt registries in plane order — the result equals merging
    /// the true per-plane registries in plane order, byte-identically.
    /// Zero-increment ops create counters whose first-appearance
    /// deltas carry the value 0; losing those records would make a
    /// collector's totals diverge from the single-process run's, so
    /// the strategy includes them deliberately.
    #[test]
    fn plane_order_delta_merge_reconstructs_the_stitched_registry(
        plane_segs in prop::collection::vec(
            prop::collection::vec(prop::collection::vec(op(), 0..20), 1..5),
            1..5,
        ),
        zero_counter in 0usize..3,
    ) {
        let mut true_planes: Vec<MetricsRegistry> = Vec::new();
        let mut rebuilt_planes: Vec<MetricsRegistry> = Vec::new();
        for (p, segs) in plane_segs.iter().enumerate() {
            let mut r = MetricsRegistry::new();
            // A counter that exists at zero from the first epoch: its
            // first-appearance delta must carry it even though the
            // count never moves.
            r.inc(OP_NAMES[zero_counter], 0);
            let mut prev = Snapshot::empty();
            let mut rebuilt = MetricsRegistry::new();
            for (i, seg) in segs.iter().enumerate() {
                for o in seg {
                    apply(&mut r, o);
                }
                let at = SimTime::from_ns((p as u64 + 1) * 10_000 + (i as u64 + 1) * 100);
                let snap = r.snapshot(at);
                rebuilt.apply_delta(&snap.delta_since(&prev));
                prev = snap;
            }
            true_planes.push(r);
            rebuilt_planes.push(rebuilt);
        }
        let mut stitched = MetricsRegistry::new();
        for r in &true_planes {
            stitched.merge(r);
        }
        let mut collected = MetricsRegistry::new();
        for r in &rebuilt_planes {
            collected.merge(r);
        }
        prop_assert_eq!(&collected, &stitched);
        prop_assert_eq!(
            serde_json::to_string(&collected).unwrap(),
            serde_json::to_string(&stitched).unwrap()
        );
    }
}

proptest! {
    /// The length-framed transport is the identity on newline-free
    /// lines: writing any sequence of lines through
    /// `LengthFramedWriter` (one frame per line, as `JsonlSink` emits
    /// them) and reading it back through `LengthFramedReader` yields
    /// the same lines, with a clean EOF after the last.
    #[test]
    fn length_framed_round_trip_is_identity(
        lines in prop::collection::vec(
            prop::collection::vec(0u8..=255, 0..200)
                .prop_map(|mut v| { v.retain(|&b| b != b'\n'); v }),
            0..40,
        ),
    ) {
        use std::io::Write as _;
        use rip_telemetry::{LengthFramedReader, LengthFramedWriter};
        let mut framed = LengthFramedWriter::new(Vec::new());
        for line in &lines {
            framed.write_all(line).unwrap();
            framed.write_all(b"\n").unwrap();
        }
        framed.flush().unwrap();
        let bytes = framed.into_inner();
        let mut reader = LengthFramedReader::new(&bytes[..]);
        let mut got: Vec<Vec<u8>> = Vec::new();
        while let Some(frame) = reader.read_frame().unwrap() {
            got.push(frame);
        }
        prop_assert_eq!(got, lines);
    }
}

proptest! {
    /// Phase accounting is complete and single-entry: an arbitrary add
    /// sequence, split at an arbitrary point into two flush windows,
    /// accounts every nanosecond and every span exactly once — the
    /// per-phase sums over the flushed records equal the sums over the
    /// raw adds, regardless of where the window boundary falls, and a
    /// drained accumulator flushes empty.
    #[test]
    fn phase_accounting_is_exact_across_flush_windows(
        adds in prop::collection::vec(
            (0usize..rip_telemetry::Phase::COUNT, 0u64..1_000_000, 1u64..100),
            1..100,
        ),
        split in 0usize..100,
    ) {
        use std::collections::BTreeMap;
        use rip_telemetry::{Phase, PhaseAcc, ProfileHub};
        let split = split.min(adds.len());
        let hub = ProfileHub::new();
        let mut acc = PhaseAcc::new();
        let mut expect: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for (i, &(p, ns, n)) in adds.iter().enumerate() {
            if i == split {
                hub.record(acc.flush("t", 0));
            }
            let phase = Phase::ALL[p];
            acc.add_ns_n(phase, ns, n);
            let e = expect.entry(phase.name().to_string()).or_insert((0, 0));
            e.0 += ns;
            e.1 += n;
        }
        hub.record(acc.flush("t", 1));
        let mut got: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for rec in hub.recent() {
            for (phase, s) in &rec.phases {
                let e = got.entry(phase.clone()).or_insert((0, 0));
                e.0 += s.ns;
                e.1 += s.count;
            }
        }
        prop_assert_eq!(got, expect);
        prop_assert!(acc.is_idle());
        prop_assert!(acc.flush("t", 2).phases.is_empty());
    }
}

proptest! {
    /// Timed spans on one thread are disjoint sub-intervals of the
    /// accumulation window, so the summed phase time of a flushed
    /// record can never exceed its wall clock — the invariant that
    /// makes per-epoch profile records interpretable as a breakdown.
    #[test]
    fn timed_phase_spans_never_exceed_the_window_wall_clock(
        phases in prop::collection::vec(0usize..rip_telemetry::Phase::COUNT, 1..50),
    ) {
        use rip_telemetry::{Phase, PhaseAcc};
        let mut acc = PhaseAcc::new();
        for &p in &phases {
            drop(acc.scope(Phase::ALL[p]));
        }
        let rec = acc.flush("t", 0);
        let spans: u64 = rec.phases.values().map(|s| s.count).sum();
        prop_assert_eq!(spans, phases.len() as u64);
        let summed: u64 = rec.phases.values().map(|s| s.ns).sum();
        prop_assert!(
            summed <= rec.wall_ns,
            "phases sum to {} ns but the window is only {} ns",
            summed,
            rec.wall_ns
        );
    }
}
