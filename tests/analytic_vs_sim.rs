//! Cross-checks between the closed-form analysis (`rip-analysis`) and
//! the device/switch simulators: the same numbers must emerge from both
//! sides, or one of them is wrong.

use rip_analysis::{datacenter, random_access};
use rip_baselines::MeshFabric;
use rip_hbm::{
    AccessPattern, Direction, HbmGeometry, HbmGroup, HbmTiming, PfiConfig, PfiController,
    RandomAccessController,
};
use rip_units::{DataRate, DataSize, TimeDelta};

fn one_stack() -> HbmGroup {
    HbmGroup::new(1, HbmGeometry::hbm4(), HbmTiming::hbm4())
}

#[test]
fn e1_simulated_reductions_match_the_closed_form() {
    for bytes in [64u64, 256, 1500] {
        let size = DataSize::from_bytes(bytes);
        let analytic = random_access::with_parallel_channels(size).reduction;
        let mut group = one_stack();
        let mut ctl = RandomAccessController::new(AccessPattern::ParallelChannels, 1);
        let sim = ctl.run(&mut group, 6400, size, Direction::Write).reduction;
        let err = (sim - analytic).abs() / analytic;
        assert!(
            err < 0.10,
            "{bytes} B: simulated {sim:.1} vs analytic {analytic:.1} ({err:.3})"
        );
    }
}

#[test]
fn e1_single_interface_matches_closed_form() {
    let size = DataSize::from_bytes(64);
    let analytic = random_access::single_logical_interface(size).reduction;
    let mut group = one_stack();
    let mut ctl = RandomAccessController::new(AccessPattern::SingleLogicalInterface, 1);
    let sim = ctl.run(&mut group, 400, size, Direction::Write).reduction;
    assert!(
        (sim - analytic).abs() / analytic < 0.05,
        "sim {sim:.0} vs analytic {analytic:.0}"
    );
}

#[test]
fn e2_pfi_utilization_exceeds_95_percent_on_the_device_model() {
    let mut group = one_stack();
    let mut pfi = PfiController::new(PfiConfig::reference(), &group).unwrap();
    let rep = pfi.run_sustained(&mut group, 600);
    assert!(rep.utilization > 0.95, "{}", rep.utilization);
    // Transitions land near the paper's ~2%.
    assert!(
        rep.turnaround_fraction > 0.005 && rep.turnaround_fraction < 0.03,
        "{}",
        rep.turnaround_fraction
    );
    // Hidden refresh: issued, and every bank within 2x the period.
    assert!(rep.refreshes > 0);
    assert!(rep.max_refresh_gap <= group.timing().t_refi_sb * 2);
}

#[test]
fn e6_mesh_bound_matches_measured_worst_case() {
    for k in [4, 6, 8, 10] {
        let m = MeshFabric::new(k, 1.0);
        let bound = m.worst_case_bound();
        let measured = m.throughput_factor(&m.bisection_tm());
        assert!(
            (measured - bound).abs() < 0.02,
            "k={k}: measured {measured} vs bound {bound}"
        );
    }
}

#[test]
fn e16_min_frame_floor_is_respected_by_the_pfi_validator() {
    // The closed-form floor says a full-stripe frame below
    // T·tRC·channel_rate cannot run at peak; the PFI validator must
    // reject the gamma/segment pair that would produce it.
    let group = one_stack();
    let floor = datacenter::min_frame(
        group.num_channels(),
        DataRate::from_gbps(640),
        TimeDelta::from_ns(30),
    );
    // gamma=2, S=1 KiB gives a frame of 64 KiB < floor (75 KiB): the
    // group span 2 x 12.8 ns < tRC 30 ns -> invalid.
    let cfg = PfiConfig {
        gamma: 2,
        segment: DataSize::from_kib(1),
        num_outputs: 4,
        stripe_channels: None,
        region_mode: rip_hbm::RegionMode::Static,
    };
    assert!(cfg.frame_size(group.num_channels()) < floor);
    assert!(cfg.validate(&group).is_err());
    // gamma=4 clears the floor and validates.
    let cfg = PfiConfig {
        gamma: 4,
        segment: DataSize::from_kib(1),
        num_outputs: 4,
        stripe_channels: None,
        region_mode: rip_hbm::RegionMode::Static,
    };
    assert!(cfg.frame_size(group.num_channels()) >= floor);
    cfg.validate(&group).expect("gamma=4 validates");
}

#[test]
fn e14_measured_delay_brackets_the_first_order_model() {
    // With padding off, the measured mean delay should sit within a
    // small factor of the fill/2 + HBM + drain/2 model.
    use rip_core::{HbmSwitch, RouterConfig};
    use rip_traffic::{
        merge_streams, ArrivalProcess, PacketGenerator, SizeDistribution, TrafficMatrix,
    };
    use rip_units::SimTime;
    let mut cfg = RouterConfig::small();
    cfg.padding_and_bypass = false;
    cfg.batch_timeout_batches = 0;
    let load = 0.6;
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let horizon = SimTime::from_ns(150_000);
    let streams: Vec<_> = (0..cfg.ribbons)
        .map(|i| {
            let mut g = PacketGenerator::new(
                i,
                cfg.port_rate(),
                load,
                tm.row(i).to_vec(),
                SizeDistribution::Imix,
                ArrivalProcess::Poisson,
                128,
                rip_sim::rng::derive_seed(51, i as u64),
            )
            .unwrap();
            g.generate_until(horizon)
        })
        .collect();
    let sw = HbmSwitch::new(cfg.clone()).unwrap();
    let r = sw.run(&merge_streams(streams), SimTime::from_ns(900_000));
    let measured_ns = r.delays_ns.mean().unwrap();
    let hbm_frame_time = cfg.hbm_peak().transfer_time(cfg.frame_size());
    let model =
        datacenter::expected_switch_delay(cfg.frame_size(), cfg.port_rate(), load, hbm_frame_time);
    let model_ns = model.as_ns_f64();
    let ratio = measured_ns / model_ns;
    assert!(
        (0.5..3.0).contains(&ratio),
        "measured {measured_ns:.0} ns vs model {model_ns:.0} ns (ratio {ratio:.2})"
    );
}

#[test]
fn reference_energy_bookkeeping_is_consistent() {
    // OEO power computed from the converter equals the §4 figure used
    // by the analysis crate.
    let oeo = rip_photonics::OeoConverter::reference();
    let p = oeo.power_at(DataRate::from_gbps(81_920));
    let analysis = rip_analysis::power::reference().per_switch.oeo;
    assert!((p.watts() - analysis.watts()).abs() < 1e-9);
}
