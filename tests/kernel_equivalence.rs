//! Kernel- and engine-equivalence differential suite.
//!
//! The timing-wheel event kernel must be observably indistinguishable
//! from the binary-heap oracle it replaced: for every shipped config in
//! `configs/*.json`, a same-seed run under each kernel must produce a
//! byte-identical serialized final report AND a byte-identical JSONL
//! live-telemetry stream. The same contract binds the sharded engine to
//! the sequential oracle: every config runs under every
//! `{Sequential, Sharded(2), Sharded(4)}` × `{wheel, heap}` pairing,
//! and a proptest randomizes shard count and conservative-window tuning
//! on top. Horizons are capped so the suite stays fast in debug builds
//! — the engines dispatch identical event sequences from the first pop,
//! so a capped run that diverges would diverge at full length too.

use std::path::PathBuf;

use rip_core::{EngineKind, FaultPlan, HbmSwitch, RouterConfig, ShardTuning};
use rip_sim::QueueKind;
use rip_telemetry::{JsonlSink, SharedSink};
use rip_traffic::{
    ArrivalProcess, BoundedSource, MergedSource, PacketGenerator, SizeDistribution, TrafficMatrix,
};
use rip_units::{SimTime, TimeDelta};
use serde::Deserialize;

// ---------------------------------------------------------------------
// Local mirror of the `ripsim` spec schema (the binary does not export
// it): only the fields the differential runs need, decoded with the
// same tags so every shipped config parses unchanged.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum MatrixSpec {
    Uniform,
    Hotspot { output: usize, fraction: f64 },
    Permutation { shift: usize },
    LogNormal { sigma: f64, seed: u64 },
}

#[derive(Debug, Clone, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum SizeSpec {
    Fixed { bytes: u64 },
    Uniform { min: u64, max: u64 },
    Imix,
}

#[derive(Debug, Clone, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum ProcessSpec {
    Poisson,
    Cbr,
    OnOff { mean_burst_packets: f64 },
}

#[derive(Debug, Clone, Deserialize)]
struct SimSpec {
    router: RouterConfig,
    load: f64,
    matrix: MatrixSpec,
    sizes: SizeSpec,
    process: ProcessSpec,
    flows: usize,
    seed: u64,
    horizon_us: u64,
    drain_factor: u64,
    #[serde(default)]
    epoch_ps: Option<u64>,
}

fn build_lanes(spec: &SimSpec, horizon: SimTime) -> Vec<BoundedSource<PacketGenerator>> {
    let n = spec.router.ribbons;
    let tm = match spec.matrix {
        MatrixSpec::Uniform => TrafficMatrix::uniform(n, 1.0),
        MatrixSpec::Hotspot { output, fraction } => {
            TrafficMatrix::hotspot(n, 1.0, output, fraction)
        }
        MatrixSpec::Permutation { shift } => {
            let perm: Vec<usize> = (0..n).map(|i| (i + shift) % n).collect();
            TrafficMatrix::permutation(&perm, 1.0).expect("valid permutation")
        }
        MatrixSpec::LogNormal { sigma, seed } => TrafficMatrix::log_normal(n, 1.0, sigma, seed),
    };
    let sizes = match spec.sizes {
        SizeSpec::Fixed { bytes } => {
            SizeDistribution::Fixed(rip_units::DataSize::from_bytes(bytes))
        }
        SizeSpec::Uniform { min, max } => SizeDistribution::Uniform { min, max },
        SizeSpec::Imix => SizeDistribution::Imix,
    };
    let process = match spec.process {
        ProcessSpec::Poisson => ArrivalProcess::Poisson,
        ProcessSpec::Cbr => ArrivalProcess::Cbr,
        ProcessSpec::OnOff { mean_burst_packets } => ArrivalProcess::OnOff { mean_burst_packets },
    };
    let lanes: Vec<BoundedSource<PacketGenerator>> = (0..n)
        .map(|port| {
            let g = PacketGenerator::new(
                port,
                spec.router.port_rate(),
                (spec.load * tm.row_load(port)).min(1.0),
                tm.row(port).to_vec(),
                sizes.clone(),
                process,
                spec.flows,
                rip_sim::rng::derive_seed(spec.seed, port as u64),
            )
            .expect("config builds a valid generator");
            BoundedSource::new(g, horizon)
        })
        .collect();
    lanes
}

fn build_source(spec: &SimSpec, horizon: SimTime) -> MergedSource<BoundedSource<PacketGenerator>> {
    MergedSource::new(build_lanes(spec, horizon))
}

/// Live-telemetry epoch period for a config: its own `epoch_ps`, or a
/// 2 us default so silent configs still exercise the JSONL comparison.
fn epoch_period(spec: &SimSpec) -> TimeDelta {
    TimeDelta::from_ps(spec.epoch_ps.unwrap_or(2_000_000))
}

/// Run `spec` to completion under `kind` and return the serialized
/// final report plus the rendered JSONL telemetry stream.
fn run_kernel(spec: &SimSpec, kind: QueueKind, horizon: SimTime) -> (String, Vec<u8>) {
    let deadline = SimTime::from_ps(horizon.as_ps() * (1 + spec.drain_factor));
    let staged = SharedSink::new();
    let mut sw = HbmSwitch::new(spec.router.clone()).expect("shipped config is valid");
    assert_eq!(sw.queue_kind(), QueueKind::default_kind());
    sw.set_queue_kind(kind);
    sw.enable_live_telemetry(epoch_period(spec), 64, Box::new(staged.clone()));
    sw.run_source(build_source(spec, horizon), deadline, &FaultPlan::default());
    let report = serde_json::to_string(&sw.into_report()).expect("report serializes");
    let mut jsonl: Vec<u8> = Vec::new();
    {
        let mut sink = JsonlSink::new(&mut jsonl);
        staged.take().replay_into(&mut sink);
    }
    (report, jsonl)
}

/// Run `spec` to completion under an explicit engine selection (and
/// shard tuning) and return the same observables as [`run_kernel`].
/// The engine in the config file itself is overridden so the matrix
/// below controls exactly what runs.
fn run_engine(
    spec: &SimSpec,
    kind: QueueKind,
    engine: EngineKind,
    tuning: ShardTuning,
    horizon: SimTime,
) -> (String, Vec<u8>) {
    let deadline = SimTime::from_ps(horizon.as_ps() * (1 + spec.drain_factor));
    let staged = SharedSink::new();
    let mut cfg = spec.router.clone();
    cfg.engine = engine;
    let mut sw = HbmSwitch::new(cfg).expect("shipped config is valid");
    sw.set_queue_kind(kind);
    sw.enable_live_telemetry(epoch_period(spec), 64, Box::new(staged.clone()));
    sw.run_ports_tuned(
        build_lanes(spec, horizon),
        deadline,
        &FaultPlan::default(),
        tuning,
    );
    let report = serde_json::to_string(&sw.into_report()).expect("report serializes");
    let mut jsonl: Vec<u8> = Vec::new();
    {
        let mut sink = JsonlSink::new(&mut jsonl);
        staged.take().replay_into(&mut sink);
    }
    (report, jsonl)
}

/// Every shipped config file, with its decoded spec.
fn shipped_configs() -> Vec<(String, SimSpec)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../configs");
    let mut names: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("configs/ directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "no configs found in {}", dir.display());
    names
        .into_iter()
        .map(|p| {
            let name = p
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            let text = std::fs::read_to_string(&p).expect("config readable");
            let spec: SimSpec = serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("{name} does not decode as a SimSpec: {e}"));
            (name, spec)
        })
        .collect()
}

/// Debug-profile cap on arrival horizons: equivalence needs identical
/// event sequences, not full-length soaks.
const HORIZON_CAP_US: u64 = 30;

#[test]
fn wheel_and_heap_kernels_agree_on_every_shipped_config() {
    let configs = shipped_configs();
    assert!(
        configs.len() >= 4,
        "expected the 4 shipped configs, found {}",
        configs.len()
    );
    for (name, spec) in &configs {
        let horizon = SimTime::from_ns(spec.horizon_us.min(HORIZON_CAP_US) * 1000);
        let (wheel_report, wheel_jsonl) = run_kernel(spec, QueueKind::TimingWheel, horizon);
        let (heap_report, heap_jsonl) = run_kernel(spec, QueueKind::BinaryHeap, horizon);
        assert_eq!(
            wheel_report, heap_report,
            "{name}: final reports diverged across kernels"
        );
        assert_eq!(
            wheel_jsonl, heap_jsonl,
            "{name}: JSONL telemetry streams diverged across kernels"
        );
        assert!(
            !wheel_jsonl.is_empty(),
            "{name}: telemetry comparison was vacuous"
        );
        // The reports carry real traffic — a config that moved no
        // packets would make the equivalence claim vacuous too.
        assert!(
            wheel_report.contains("\"offered_packets\":")
                && !wheel_report.contains("\"offered_packets\":0,"),
            "{name}: run offered no packets"
        );
    }
}

#[test]
fn every_engine_and_kernel_agrees_on_every_shipped_config() {
    // The full matrix: {Sequential, Sharded(2), Sharded(4)} x
    // {wheel, heap}, every shipped config, byte-identical reports and
    // JSONL streams against the sequential/wheel baseline.
    let engines = [
        EngineKind::Sequential,
        EngineKind::Sharded { shards: 2 },
        EngineKind::Sharded { shards: 4 },
    ];
    let kinds = [QueueKind::TimingWheel, QueueKind::BinaryHeap];
    for (name, spec) in &shipped_configs() {
        let horizon = SimTime::from_ns(spec.horizon_us.min(HORIZON_CAP_US) * 1000);
        let (base_report, base_jsonl) = run_engine(
            spec,
            QueueKind::TimingWheel,
            EngineKind::Sequential,
            ShardTuning::default(),
            horizon,
        );
        assert!(!base_jsonl.is_empty(), "{name}: comparison was vacuous");
        for engine in engines {
            for kind in kinds {
                if engine == EngineKind::Sequential && kind == QueueKind::TimingWheel {
                    continue; // that's the baseline itself
                }
                let (report, jsonl) =
                    run_engine(spec, kind, engine, ShardTuning::default(), horizon);
                assert_eq!(
                    report, base_report,
                    "{name}: {engine:?}/{kind:?} report diverged from Sequential/TimingWheel"
                );
                assert_eq!(
                    jsonl, base_jsonl,
                    "{name}: {engine:?}/{kind:?} JSONL stream diverged from Sequential/TimingWheel"
                );
            }
        }
    }
}

/// Proptest horizon: shorter than the matrix's — 8 random pairings
/// against a cached oracle still need to stay cheap in debug builds.
const PROPTEST_HORIZON_US: u64 = 10;

/// The proptest's cached sequential-oracle run (spec + observables),
/// computed once across cases.
fn proptest_oracle() -> &'static (String, SimSpec, (String, Vec<u8>)) {
    use std::sync::OnceLock;
    static ORACLE: OnceLock<(String, SimSpec, (String, Vec<u8>))> = OnceLock::new();
    ORACLE.get_or_init(|| {
        let (name, spec) = shipped_configs().remove(0);
        let horizon = SimTime::from_ns(spec.horizon_us.min(PROPTEST_HORIZON_US) * 1000);
        let base = run_engine(
            &spec,
            QueueKind::TimingWheel,
            EngineKind::Sequential,
            ShardTuning::default(),
            horizon,
        );
        (name, spec, base)
    })
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(8))]

    /// Randomize the shard count AND every conservative-window knob:
    /// none of them may change a single output byte — they only trade
    /// cross-thread messaging against shard run-ahead.
    #[test]
    fn random_shard_counts_and_windows_match_the_sequential_oracle(
        shards in 1usize..=4,
        block_events in 1usize..=512,
        window_mult in 1u64..=100_000,
        channel_blocks in 1usize..=8,
    ) {
        let (name, spec, baseline) = proptest_oracle();
        let horizon = SimTime::from_ns(spec.horizon_us.min(PROPTEST_HORIZON_US) * 1000);
        let tuning = ShardTuning {
            block_events,
            window_mult,
            channel_blocks,
        };
        let shards = shards.min(spec.router.ribbons);
        let got = run_engine(
            spec,
            QueueKind::TimingWheel,
            EngineKind::Sharded { shards },
            tuning,
            horizon,
        );
        proptest::prop_assert!(
            &got == baseline,
            "{}: Sharded({}) with {:?} diverged from the oracle",
            name, shards, tuning
        );
    }
}

#[test]
fn wheel_kernel_runs_are_deterministic() {
    // Differential equivalence is only meaningful if each kernel is
    // itself reproducible: two same-seed wheel runs must match bytewise.
    let (name, spec) = &shipped_configs()[0];
    let horizon = SimTime::from_ns(spec.horizon_us.min(HORIZON_CAP_US) * 1000);
    let a = run_kernel(spec, QueueKind::TimingWheel, horizon);
    let b = run_kernel(spec, QueueKind::TimingWheel, horizon);
    assert_eq!(a, b, "{name}: same-seed wheel runs diverged");
}
