//! Property-based tests on the workspace's core invariants.

use proptest::prelude::*;
use rip_baselines::IdealOqSwitch;
use rip_core::{BatchAssembler, CyclicalCrossbar};
use rip_photonics::{SplitMap, SplitPattern};
use rip_sim::stats::Histogram;
use rip_sim::EventQueue;
use rip_traffic::hash::{lane_for, HashKind};
use rip_traffic::{FlowKey, Packet, TrafficMatrix};
use rip_units::{DataRate, DataSize, SimTime};

proptest! {
    /// Batch assembly never loses, duplicates or reorders a byte, for
    /// arbitrary packet-size sequences, including jumbos that straddle
    /// several batches.
    #[test]
    fn batch_assembly_conserves_bytes(
        sizes in prop::collection::vec(1u64..9000, 1..200),
        outputs in 1usize..8,
    ) {
        let k = DataSize::from_kib(1);
        let mut a = BatchAssembler::new(0, outputs, k);
        let mut batches = Vec::new();
        let mut offered = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            offered += s;
            let p = Packet::new(i as u64, 0, i % outputs, DataSize::from_bytes(s), SimTime::ZERO);
            batches.extend(a.push(&p));
        }
        for o in 0..outputs {
            while let Some(b) = a.flush(o) {
                batches.push(b);
            }
        }
        // Conservation.
        let out: u64 = batches.iter().map(|b| b.payload().bytes()).sum();
        prop_assert_eq!(out, offered);
        // Every full batch is exactly k; every batch is k with padding.
        for b in &batches {
            prop_assert_eq!(b.size(), k);
        }
        // Per-output chunk streams reconstruct whole packets in order.
        for o in 0..outputs {
            let mut expected: Vec<(u64, u64)> = Vec::new(); // (id, size)
            for (i, &s) in sizes.iter().enumerate() {
                if i % outputs == o {
                    expected.push((i as u64, s));
                }
            }
            let mut iter = expected.into_iter();
            let mut cur: Option<(u64, u64, u64)> = iter.next().map(|(id, s)| (id, s, 0));
            for b in batches.iter().filter(|b| b.output == o) {
                for c in &b.chunks {
                    let (id, size, off) = cur.take().expect("chunk beyond expected packets");
                    prop_assert_eq!(c.packet, id);
                    prop_assert_eq!(c.offset, off);
                    let new_off = off + c.len.bytes();
                    prop_assert!(new_off <= size);
                    if c.is_last {
                        prop_assert_eq!(new_off, size);
                        cur = iter.next().map(|(id, s)| (id, s, 0));
                    } else {
                        cur = Some((id, size, new_off));
                    }
                }
            }
            prop_assert!(cur.is_none() || cur.map(|c| c.2) == Some(0) || cur.is_some());
        }
    }

    /// The cyclical crossbar is a permutation at every slot, and every
    /// input's slice walk starting at its start slot visits modules
    /// 0..n in order.
    #[test]
    fn crossbar_is_always_a_permutation(n in 1usize..64, slot in 0u64..10_000) {
        let xb = CyclicalCrossbar::new(n);
        let mut seen = vec![false; n];
        for i in 0..n {
            let m = xb.module_for(i, slot);
            prop_assert!(!seen[m]);
            seen[m] = true;
            prop_assert_eq!(xb.input_for(m, slot), i);
        }
        let input = (slot as usize) % n;
        let start = xb.next_start_slot(input, slot);
        for j in 0..n as u64 {
            prop_assert_eq!(xb.module_for(input, start + j), j as usize);
        }
    }

    /// Every split pattern assigns exactly alpha fibers of every ribbon
    /// to every switch.
    #[test]
    fn split_maps_are_alpha_regular(
        ribbons in 1usize..12,
        alpha in 1usize..6,
        switches in 1usize..12,
        seed in any::<u64>(),
    ) {
        let fibers = alpha * switches;
        for pattern in [
            SplitPattern::Sequential,
            SplitPattern::Striped,
            SplitPattern::PseudoRandom { seed },
        ] {
            let m = SplitMap::new(ribbons, fibers, switches, pattern).unwrap();
            for r in 0..ribbons {
                for s in 0..switches {
                    prop_assert_eq!(m.fibers_for(r, s).len(), alpha);
                }
            }
        }
    }

    /// Event queues deliver in non-decreasing time order and FIFO
    /// within equal times.
    #[test]
    fn event_queue_orders_deliveries(times in prop::collection::vec(0u64..1000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ns(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated among equal times");
                }
            }
            last = Some((t, i));
        }
    }

    /// Exact transfer-time arithmetic: ceil-rounded, monotone in size,
    /// and the inverse (data_in) never under-delivers.
    #[test]
    fn rate_arithmetic_is_consistent(
        bps in 1u64..10_000_000_000_000,
        bytes in 1u64..1_000_000,
    ) {
        let r = DataRate::from_bps(bps);
        let s = DataSize::from_bytes(bytes);
        let t = r.transfer_time(s);
        prop_assert!(t.as_ps() > 0);
        // Monotone.
        let t2 = r.transfer_time(s + DataSize::from_bytes(1));
        prop_assert!(t2 >= t);
        // data_in(t) >= s (ceil rounding can only over-cover).
        prop_assert!(r.data_in(t).bits() >= s.bits());
    }

    /// Histogram quantiles are monotone in q and bounded by min/max.
    #[test]
    fn histogram_quantiles_monotone(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= prev);
            prev = v;
        }
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(h.quantile(0.0).unwrap(), min);
        prop_assert_eq!(h.quantile(1.0).unwrap(), max);
    }

    /// Flow hashing always lands within the lane count and is stable.
    #[test]
    fn hash_lanes_in_range(
        src in any::<u32>(), dst in any::<u32>(),
        sp in any::<u16>(), dp in any::<u16>(),
        proto in any::<u8>(), lanes in 1usize..256,
    ) {
        let f = FlowKey { src_ip: src, dst_ip: dst, src_port: sp, dst_port: dp, proto };
        for kind in [HashKind::Fnv1a, HashKind::Crc32c] {
            let lane = lane_for(f, lanes, kind);
            prop_assert!(lane < lanes);
            prop_assert_eq!(lane, lane_for(f, lanes, kind));
        }
    }

    /// The ideal OQ switch is work-conserving and FIFO per output:
    /// departures are non-decreasing per output, each at least
    /// arrival + serialization.
    #[test]
    fn ideal_oq_invariants(
        arrivals in prop::collection::vec((0u64..10_000, 0usize..4, 64u64..1500), 1..100),
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort_by_key(|&(t, _, _)| t);
        let rate = DataRate::from_gbps(100);
        let mut sw = IdealOqSwitch::new(4, rate);
        let mut last_dep = vec![SimTime::ZERO; 4];
        for (i, &(t, o, s)) in sorted.iter().enumerate() {
            let p = Packet::new(i as u64, 0, o, DataSize::from_bytes(s), SimTime::from_ns(t));
            let d = sw.offer(&p);
            let min_dep = p.arrival + rate.transfer_time(p.size);
            prop_assert!(d.departure >= min_dep);
            prop_assert!(d.departure >= last_dep[o]);
            last_dep[o] = d.departure;
        }
    }

    /// Uniform and permutation matrices are admissible at load <= 1.
    #[test]
    fn canonical_matrices_admissible(n in 1usize..32, load in 0.0f64..1.0) {
        prop_assert!(TrafficMatrix::uniform(n, load).is_admissible());
        let perm: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
        prop_assert!(TrafficMatrix::permutation(&perm, load).unwrap().is_admissible());
    }
}
