//! Property-based tests on the workspace's core invariants.

use proptest::prelude::*;
use rip_baselines::IdealOqSwitch;
use rip_core::{BatchAssembler, CyclicalCrossbar, FaultKind, FaultPlan, HbmSwitch, RouterConfig};
use rip_integration_tests::trace_for;
use rip_photonics::{SplitMap, SplitPattern};
use rip_sim::stats::Histogram;
use rip_sim::EventQueue;
use rip_traffic::hash::{lane_for, HashKind};
use rip_traffic::{FlowKey, Packet, TrafficMatrix};
use rip_units::{DataRate, DataSize, SimTime};

proptest! {
    /// Batch assembly never loses, duplicates or reorders a byte, for
    /// arbitrary packet-size sequences, including jumbos that straddle
    /// several batches.
    #[test]
    fn batch_assembly_conserves_bytes(
        sizes in prop::collection::vec(1u64..9000, 1..200),
        outputs in 1usize..8,
    ) {
        let k = DataSize::from_kib(1);
        let mut a = BatchAssembler::new(0, outputs, k);
        let mut batches = Vec::new();
        let mut offered = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            offered += s;
            let p = Packet::new(i as u64, 0, i % outputs, DataSize::from_bytes(s), SimTime::ZERO);
            batches.extend(a.push(&p));
        }
        for o in 0..outputs {
            while let Some(b) = a.flush(o) {
                batches.push(b);
            }
        }
        // Conservation.
        let out: u64 = batches.iter().map(|b| b.payload().bytes()).sum();
        prop_assert_eq!(out, offered);
        // Every full batch is exactly k; every batch is k with padding.
        for b in &batches {
            prop_assert_eq!(b.size(), k);
        }
        // Per-output chunk streams reconstruct whole packets in order.
        for o in 0..outputs {
            let mut expected: Vec<(u64, u64)> = Vec::new(); // (id, size)
            for (i, &s) in sizes.iter().enumerate() {
                if i % outputs == o {
                    expected.push((i as u64, s));
                }
            }
            let mut iter = expected.into_iter();
            let mut cur: Option<(u64, u64, u64)> = iter.next().map(|(id, s)| (id, s, 0));
            for b in batches.iter().filter(|b| b.output == o) {
                for c in &b.chunks {
                    let (id, size, off) = cur.take().expect("chunk beyond expected packets");
                    prop_assert_eq!(c.packet, id);
                    prop_assert_eq!(c.offset, off);
                    let new_off = off + c.len.bytes();
                    prop_assert!(new_off <= size);
                    if c.is_last {
                        prop_assert_eq!(new_off, size);
                        cur = iter.next().map(|(id, s)| (id, s, 0));
                    } else {
                        cur = Some((id, size, new_off));
                    }
                }
            }
            prop_assert!(cur.is_none() || cur.map(|c| c.2) == Some(0) || cur.is_some());
        }
    }

    /// The cyclical crossbar is a permutation at every slot, and every
    /// input's slice walk starting at its start slot visits modules
    /// 0..n in order.
    #[test]
    fn crossbar_is_always_a_permutation(n in 1usize..64, slot in 0u64..10_000) {
        let xb = CyclicalCrossbar::new(n);
        let mut seen = vec![false; n];
        for i in 0..n {
            let m = xb.module_for(i, slot);
            prop_assert!(!seen[m]);
            seen[m] = true;
            prop_assert_eq!(xb.input_for(m, slot), i);
        }
        let input = (slot as usize) % n;
        let start = xb.next_start_slot(input, slot);
        for j in 0..n as u64 {
            prop_assert_eq!(xb.module_for(input, start + j), j as usize);
        }
    }

    /// Every split pattern assigns exactly alpha fibers of every ribbon
    /// to every switch.
    #[test]
    fn split_maps_are_alpha_regular(
        ribbons in 1usize..12,
        alpha in 1usize..6,
        switches in 1usize..12,
        seed in any::<u64>(),
    ) {
        let fibers = alpha * switches;
        for pattern in [
            SplitPattern::Sequential,
            SplitPattern::Striped,
            SplitPattern::PseudoRandom { seed },
        ] {
            let m = SplitMap::new(ribbons, fibers, switches, pattern).unwrap();
            for r in 0..ribbons {
                for s in 0..switches {
                    prop_assert_eq!(m.fibers_for(r, s).len(), alpha);
                }
            }
        }
    }

    /// Event queues deliver in non-decreasing time order and FIFO
    /// within equal times.
    #[test]
    fn event_queue_orders_deliveries(times in prop::collection::vec(0u64..1000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ns(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated among equal times");
                }
            }
            last = Some((t, i));
        }
    }

    /// Exact transfer-time arithmetic: ceil-rounded, monotone in size,
    /// and the inverse (data_in) never under-delivers.
    #[test]
    fn rate_arithmetic_is_consistent(
        bps in 1u64..10_000_000_000_000,
        bytes in 1u64..1_000_000,
    ) {
        let r = DataRate::from_bps(bps);
        let s = DataSize::from_bytes(bytes);
        let t = r.transfer_time(s);
        prop_assert!(t.as_ps() > 0);
        // Monotone.
        let t2 = r.transfer_time(s + DataSize::from_bytes(1));
        prop_assert!(t2 >= t);
        // data_in(t) >= s (ceil rounding can only over-cover).
        prop_assert!(r.data_in(t).bits() >= s.bits());
    }

    /// Histogram quantiles are monotone in q and bounded by min/max.
    #[test]
    fn histogram_quantiles_monotone(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= prev);
            prev = v;
        }
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(h.quantile(0.0).unwrap(), min);
        prop_assert_eq!(h.quantile(1.0).unwrap(), max);
    }

    /// Flow hashing always lands within the lane count and is stable.
    #[test]
    fn hash_lanes_in_range(
        src in any::<u32>(), dst in any::<u32>(),
        sp in any::<u16>(), dp in any::<u16>(),
        proto in any::<u8>(), lanes in 1usize..256,
    ) {
        let f = FlowKey { src_ip: src, dst_ip: dst, src_port: sp, dst_port: dp, proto };
        for kind in [HashKind::Fnv1a, HashKind::Crc32c] {
            let lane = lane_for(f, lanes, kind);
            prop_assert!(lane < lanes);
            prop_assert_eq!(lane, lane_for(f, lanes, kind));
        }
    }

    /// The ideal OQ switch is work-conserving and FIFO per output:
    /// departures are non-decreasing per output, each at least
    /// arrival + serialization.
    #[test]
    fn ideal_oq_invariants(
        arrivals in prop::collection::vec((0u64..10_000, 0usize..4, 64u64..1500), 1..100),
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort_by_key(|&(t, _, _)| t);
        let rate = DataRate::from_gbps(100);
        let mut sw = IdealOqSwitch::new(4, rate);
        let mut last_dep = [SimTime::ZERO; 4];
        for (i, &(t, o, s)) in sorted.iter().enumerate() {
            let p = Packet::new(i as u64, 0, o, DataSize::from_bytes(s), SimTime::from_ns(t));
            let d = sw.offer(&p);
            let min_dep = p.arrival + rate.transfer_time(p.size);
            prop_assert!(d.departure >= min_dep);
            prop_assert!(d.departure >= last_dep[o]);
            last_dep[o] = d.departure;
        }
    }

    /// Uniform and permutation matrices are admissible at load <= 1.
    #[test]
    fn canonical_matrices_admissible(n in 1usize..32, load in 0.0f64..1.0) {
        prop_assert!(TrafficMatrix::uniform(n, load).is_admissible());
        let perm: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
        prop_assert!(TrafficMatrix::permutation(&perm, load).unwrap().is_admissible());
    }
}

/// Generate a small, always-valid fault plan against
/// `RouterConfig::resilience_small()` (4 channels, 16 banks/channel):
/// one inject within the horizon, with an optional recover after it.
fn small_fault_plan(horizon_ns: u64) -> impl Strategy<Value = FaultPlan> {
    (
        (0usize..3, 0usize..4, 0usize..16), // fault kind, channel, bank
        1u64..20,                           // storm duration, us (for RefreshStorm)
        1..horizon_ns,                      // inject time, ns
        0..horizon_ns,                      // recover delay, ns; 0 = never recover
    )
        .prop_map(
            move |((which, channel, bank), storm_us, t_inject, recover_after)| {
                let kind = match which {
                    0 => FaultKind::HbmChannelDown { channel },
                    1 => FaultKind::HbmBankStuck { channel, bank },
                    _ => FaultKind::RefreshStorm {
                        duration: rip_units::TimeDelta::from_us(storm_us),
                    },
                };
                let mut plan = FaultPlan::new().inject(SimTime::from_ns(t_inject), kind);
                // Refresh storms schedule their own recovery; an explicit
                // Recover for them is rejected by validation.
                if recover_after > 0 && !matches!(kind, FaultKind::RefreshStorm { .. }) {
                    plan = plan.recover(SimTime::from_ns(t_inject + recover_after), kind);
                }
                plan
            },
        )
}

// Whole-switch properties run full discrete-event simulations, so they
// get far fewer cases than the cheap structural properties above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Packet conservation under any valid fault plan: once the switch
    /// drains, every offered packet was either delivered, dropped
    /// because of the fault, or dropped by ordinary congestion.
    #[test]
    fn faulted_switch_conserves_packets(
        plan in small_fault_plan(60_000),
        load in 0.3f64..0.8,
        seed in any::<u64>(),
    ) {
        let cfg = RouterConfig::resilience_small();
        plan.validate(&cfg).expect("strategy only builds valid plans");
        let horizon = SimTime::from_ns(60_000);
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let trace = trace_for(&cfg, &tm, load, horizon, seed);
        let sw = HbmSwitch::new(cfg).unwrap();
        let r = sw.run_with_faults(&trace, SimTime::from_ns(600_000), &plan);
        prop_assert_eq!(
            r.delivered_packets + r.dropped_packets_fault + r.dropped_packets_congestion,
            trace.len() as u64,
            "delivered {} + fault {} + congestion {} != offered {}",
            r.delivered_packets,
            r.dropped_packets_fault,
            r.dropped_packets_congestion,
            trace.len(),
        );
    }

    /// A zero-event fault plan is byte-identical to the plain run: same
    /// deliveries, same departure times, no degraded accounting.
    #[test]
    fn empty_fault_plan_is_identity(seed in any::<u64>(), load in 0.3f64..0.9) {
        let cfg = RouterConfig::resilience_small();
        let horizon = SimTime::from_ns(30_000);
        let drain = SimTime::from_ns(300_000);
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let trace = trace_for(&cfg, &tm, load, horizon, seed);
        let plain = HbmSwitch::new(cfg.clone()).unwrap().run(&trace, drain);
        let faulted =
            HbmSwitch::new(cfg).unwrap().run_with_faults(&trace, drain, &FaultPlan::new());
        prop_assert_eq!(plain.delivered_packets, faulted.delivered_packets);
        prop_assert_eq!(&plain.departures, &faulted.departures);
        prop_assert_eq!(faulted.time_degraded, rip_units::TimeDelta::ZERO);
        prop_assert_eq!(faulted.dropped_packets_fault, 0);
        prop_assert!(faulted.recovery_drain.is_none());
    }

    /// Fail-then-recover returns the sustained delivered rate to the
    /// healthy baseline: with 1-of-4 channels down for one window, the
    /// post-catch-up window delivers within 10% of the pre-fault one.
    #[test]
    fn recovery_restores_sustained_rate(seed in prop::sample::select(vec![7u64, 21, 42])) {
        let cfg = RouterConfig::resilience_small();
        let t = 150_000u64; // ns; window length, fault at t, recover 2t
        let plan = FaultPlan::new()
            .inject(SimTime::from_ns(t), FaultKind::HbmChannelDown { channel: 3 })
            .recover(SimTime::from_ns(2 * t), FaultKind::HbmChannelDown { channel: 3 });
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let trace = trace_for(&cfg, &tm, 0.75, SimTime::from_ns(4 * t), seed);
        let sizes: std::collections::HashMap<u64, u64> =
            trace.iter().map(|p| (p.id, p.size.bits())).collect();
        let sw = HbmSwitch::new(cfg).unwrap();
        let r = sw.run_with_faults(&trace, SimTime::from_ns(16 * t), &plan);
        let window = |i: u64| -> u64 {
            r.departures
                .iter()
                .filter(|d| {
                    d.time >= SimTime::from_ns(i * t) && d.time < SimTime::from_ns((i + 1) * t)
                })
                .map(|d| sizes[&d.packet])
                .sum()
        };
        let healthy = window(0) as f64;
        let degraded = window(1) as f64 / healthy;
        let settled = window(3) as f64 / healthy;
        prop_assert!((0.6..=0.9).contains(&degraded), "degraded ratio {degraded:.3}");
        prop_assert!((0.9..=1.1).contains(&settled), "settled ratio {settled:.3}");
        prop_assert!(r.recovery_drain.is_some());
    }
}
