//! E4 integration: the HBM switch mimics the ideal OQ switch within a
//! finite lag, across loads, matrices and speedups.

use rip_core::{MimicChecker, RouterConfig};
use rip_integration_tests::trace_for;
use rip_traffic::TrafficMatrix;
use rip_units::{SimTime, TimeDelta};

fn cfg_with_headroom() -> RouterConfig {
    let mut cfg = RouterConfig::small();
    cfg.hbm_geometry.channels_per_stack = 16;
    cfg
}

#[test]
fn lag_is_finite_across_matrices() {
    let cfg = cfg_with_headroom();
    let horizon = SimTime::from_ns(60_000);
    let drain = SimTime::from_ns(500_000);
    let perm: Vec<usize> = (0..cfg.ribbons).map(|i| (i + 1) % cfg.ribbons).collect();
    for tm in [
        TrafficMatrix::uniform(cfg.ribbons, 1.0),
        TrafficMatrix::permutation(&perm, 1.0).unwrap(),
        TrafficMatrix::log_normal(cfg.ribbons, 1.0, 0.8, 2),
    ] {
        let trace = trace_for(&cfg, &tm, 0.8, horizon, 31);
        let r = MimicChecker::new(cfg.clone()).run(&trace, drain);
        assert!(r.compared > 100, "compared only {}", r.compared);
        // "Within a finite delay": bounded well below the trace span.
        assert!(
            r.max_lag < TimeDelta::from_ns(20_000),
            "max lag {} too large",
            r.max_lag
        );
    }
}

#[test]
fn lag_does_not_grow_with_trace_length() {
    let cfg = cfg_with_headroom();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let short = MimicChecker::new(cfg.clone()).run(
        &trace_for(&cfg, &tm, 0.75, SimTime::from_ns(40_000), 7),
        SimTime::from_ns(300_000),
    );
    let long = MimicChecker::new(cfg.clone()).run(
        &trace_for(&cfg, &tm, 0.75, SimTime::from_ns(160_000), 7),
        SimTime::from_ns(900_000),
    );
    assert!(long.compared > 2 * short.compared);
    let s = short.max_lag.as_ns_f64().max(1.0);
    assert!(
        long.max_lag.as_ns_f64() < 3.0 * s + 50_000.0,
        "lag grew: {} vs {}",
        long.max_lag,
        short.max_lag
    );
}

#[test]
fn speedup_strictly_helps_at_high_load() {
    let base = cfg_with_headroom();
    let tm = TrafficMatrix::uniform(base.ribbons, 1.0);
    let trace = trace_for(&base, &tm, 0.9, SimTime::from_ns(80_000), 3);
    let drain = SimTime::from_ns(600_000);
    let r1 = MimicChecker::new(base.clone()).run(&trace, drain);
    let mut fast = base.clone();
    fast.speedup = 2.0;
    let r2 = MimicChecker::new(fast).run(&trace, drain);
    assert!(
        r2.mean_lag <= r1.mean_lag,
        "{} > {}",
        r2.mean_lag,
        r1.mean_lag
    );
    assert!(r2.p99_lag <= r1.p99_lag);
}

#[test]
fn every_compared_packet_is_reported_in_the_histogram() {
    let cfg = cfg_with_headroom();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let trace = trace_for(&cfg, &tm, 0.6, SimTime::from_ns(30_000), 5);
    let r = MimicChecker::new(cfg).run(&trace, SimTime::from_ns(300_000));
    assert_eq!(r.lags_ns.count() as u64, r.compared);
    assert!(r.fraction_within(r.max_lag) > 0.99);
}
