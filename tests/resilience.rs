//! Deterministic fault-injection acceptance test: with 1-of-4 HBM
//! channels down between `T` and `2T`, the switch (a) sustains ~3/4 of
//! its healthy delivered rate while degraded, (b) loses nothing to the
//! fault at offered loads at or below 0.7 of the degraded capacity, and
//! (c) returns to the healthy baseline after recovery.
//!
//! The operating point (uniform IMIX/Poisson at load 0.75, `T` =
//! 150 us) was calibrated against `RouterConfig::resilience_small()`:
//! one dead channel is exactly 1/4 of a plane's HBM bandwidth, and 0.75
//! sits above the degraded capacity so the cliff is visible without
//! driving the healthy switch into saturation.

use std::collections::HashMap;

use rip_core::{FaultKind, FaultPlan, HbmSwitch, RouterConfig, SwitchReport};
use rip_sim::rng::derive_seed;
use rip_traffic::{
    merge_streams, ArrivalProcess, Packet, PacketGenerator, SizeDistribution, TrafficMatrix,
};
use rip_units::{DataSize, SimTime, TimeDelta};

const T: u64 = 150; // us; fault at T, recover at 2T, horizon 4T

fn uniform_trace(cfg: &RouterConfig, load: f64, horizon: SimTime, seed: u64) -> Vec<Packet> {
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let streams: Vec<_> = (0..cfg.ribbons)
        .map(|port| {
            let mut g = PacketGenerator::new(
                port,
                cfg.port_rate(),
                load * tm.row_load(port),
                tm.row(port).to_vec(),
                SizeDistribution::Imix,
                ArrivalProcess::Poisson,
                256,
                derive_seed(seed, port as u64),
            )
            .expect("valid generator");
            g.generate_until(horizon)
        })
        .collect();
    merge_streams(streams)
}

/// Delivered bits within `[from, to)`, from the departure log.
fn window_bits(
    r: &SwitchReport,
    sizes: &HashMap<u64, DataSize>,
    from: SimTime,
    to: SimTime,
) -> u64 {
    r.departures
        .iter()
        .filter(|d| d.time >= from && d.time < to)
        .map(|d| sizes[&d.packet].bits())
        .sum()
}

fn channel_down_plan() -> FaultPlan {
    FaultPlan::new()
        .inject(
            SimTime::from_ns(T * 1000),
            FaultKind::HbmChannelDown { channel: 3 },
        )
        .recover(
            SimTime::from_ns(2 * T * 1000),
            FaultKind::HbmChannelDown { channel: 3 },
        )
}

#[test]
fn degraded_rate_tracks_surviving_channels_and_recovers() {
    let cfg = RouterConfig::resilience_small();
    let plan = channel_down_plan();
    plan.validate(&cfg).expect("plan valid");

    let horizon = SimTime::from_ns(4 * T * 1000);
    let drain = SimTime::from_ns(16 * T * 1000);
    let trace = uniform_trace(&cfg, 0.75, horizon, 42);
    let sizes: HashMap<u64, DataSize> = trace.iter().map(|p| (p.id, p.size)).collect();

    let sw = HbmSwitch::new(cfg).expect("valid config");
    let r = sw.run_with_faults(&trace, drain, &plan);

    let w = |i: u64| {
        window_bits(
            &r,
            &sizes,
            SimTime::from_ns(i * T * 1000),
            SimTime::from_ns((i + 1) * T * 1000),
        )
    };
    let healthy = w(0);
    let degraded = w(1);
    let settled = w(3);
    assert!(healthy > 0);

    // (a) With 1 of 4 channels dead, the sustained delivered rate drops
    // to roughly 3/4 of the healthy rate.
    let r_degraded = degraded as f64 / healthy as f64;
    assert!(
        (0.68..=0.82).contains(&r_degraded),
        "degraded/healthy = {r_degraded:.3}, expected ~0.75"
    );

    // (c) After recovery and catch-up, the delivered rate settles back
    // to the healthy baseline.
    let r_settled = settled as f64 / healthy as f64;
    assert!(
        (0.9..=1.1).contains(&r_settled),
        "settled/healthy = {r_settled:.3}, expected ~1.0"
    );

    // Occupancy drains back to the pre-fault baseline well within
    // another fault period of the recovery.
    let drain_time = r.recovery_drain.expect("recovery drain recorded");
    assert!(
        drain_time < TimeDelta::from_us(2 * T),
        "recovery drain {drain_time:?} too slow"
    );

    // Exact degraded-mode accounting: one 640 Gb/s channel dead for
    // exactly 150 us is 12,000,000 bytes of forgone HBM bandwidth.
    assert_eq!(r.time_degraded, TimeDelta::from_us(T));
    assert_eq!(r.capacity_lost, DataSize::from_bytes(12_000_000));
}

#[test]
fn no_fault_loss_below_degraded_capacity() {
    // (b) At offered load 0.5 (<= 0.7 of the 3/4 degraded capacity) the
    // fault causes zero loss of either kind: the input queues absorb
    // the transient and everything is delivered.
    let cfg = RouterConfig::resilience_small();
    let plan = channel_down_plan();

    let horizon = SimTime::from_ns(4 * T * 1000);
    let drain = SimTime::from_ns(16 * T * 1000);
    let trace = uniform_trace(&cfg, 0.5, horizon, 42);

    let sw = HbmSwitch::new(cfg).expect("valid config");
    let r = sw.run_with_faults(&trace, drain, &plan);

    assert_eq!(r.dropped_packets_fault, 0, "fault-attributed drops");
    assert_eq!(r.dropped_packets_congestion, 0, "congestion drops");
    assert_eq!(r.delivered_packets, trace.len() as u64);
    assert_eq!(r.time_degraded, TimeDelta::from_us(T));
}
