//! Shared helpers for the cross-crate integration tests.

use std::collections::VecDeque;

use rip_core::RouterConfig;
use rip_hbm::{HbmCommand, HbmCommandKind, HbmTiming};
use rip_traffic::{
    merge_streams, ArrivalProcess, BoundedSource, MergedSource, Packet, PacketGenerator,
    SizeDistribution, TrafficMatrix,
};
use rip_units::{DataRate, SimTime};

/// Build an arrival-ordered trace for an HBM switch.
pub fn trace_for(
    cfg: &RouterConfig,
    tm: &TrafficMatrix,
    load: f64,
    horizon: SimTime,
    seed: u64,
) -> Vec<Packet> {
    let streams: Vec<Vec<Packet>> = (0..cfg.ribbons)
        .map(|i| {
            let row = (load * tm.row_load(i)).min(1.0);
            if row <= 0.0 {
                return Vec::new();
            }
            let mut g = PacketGenerator::new(
                i,
                cfg.port_rate(),
                row,
                tm.row(i).to_vec(),
                SizeDistribution::Imix,
                ArrivalProcess::Poisson,
                128,
                rip_sim::rng::derive_seed(seed, i as u64),
            )
            .expect("valid generator");
            g.generate_until(horizon)
        })
        .collect();
    merge_streams(streams)
}

/// Pull-based counterpart of [`trace_for`]: yields the identical packet
/// sequence lazily (one bounded generator per non-idle port, merged
/// deterministically), never holding the trace in memory.
pub fn source_for(
    cfg: &RouterConfig,
    tm: &TrafficMatrix,
    load: f64,
    horizon: SimTime,
    seed: u64,
) -> MergedSource<BoundedSource<PacketGenerator>> {
    let lanes: Vec<BoundedSource<PacketGenerator>> = (0..cfg.ribbons)
        .filter_map(|i| {
            let row = (load * tm.row_load(i)).min(1.0);
            if row <= 0.0 {
                return None;
            }
            let g = PacketGenerator::new(
                i,
                cfg.port_rate(),
                row,
                tm.row(i).to_vec(),
                SizeDistribution::Imix,
                ArrivalProcess::Poisson,
                128,
                rip_sim::rng::derive_seed(seed, i as u64),
            )
            .expect("valid generator");
            Some(BoundedSource::new(g, horizon))
        })
        .collect();
    MergedSource::new(lanes)
}

// --------------------------------------------------------------------
// Independent HBM timing-conformance oracle
// --------------------------------------------------------------------

/// Per-bank replay state for [`TimingChecker`].
#[derive(Debug, Clone, Copy)]
struct BankReplay {
    /// Open row, if any.
    open: Option<u64>,
    /// Issue time of the ACT that opened the current row.
    act_at: SimTime,
    /// When the bank becomes usable after PRE / REFsb.
    idle_at: SimTime,
    /// End of the bank's last column transfer.
    last_cas_end: SimTime,
    /// Issue time of the last REFsb (None before the first).
    last_refresh: Option<SimTime>,
}

/// Replays a recorded per-channel HBM command stream and independently
/// re-derives every timing rule — tRCD, tRP, tRAS, tFAW, tWTR/tRTW,
/// data-bus serialization (the tCCD-equivalent in this transfer-level
/// model) and, optionally, the per-bank refresh interval. It shares no
/// scheduling state with [`rip_hbm::Channel`]: the only inputs are the
/// command log, the [`HbmTiming`] parameter set and the channel rate,
/// so a controller bug that silently over-drives the device shows up
/// as a violation here even if the controller believed its schedule.
#[derive(Debug, Clone)]
pub struct TimingChecker {
    timing: HbmTiming,
    rate: DataRate,
    banks: usize,
    refresh_interval: bool,
}

impl TimingChecker {
    /// A checker for a channel with `banks` banks at `rate`, enforcing
    /// `timing`.
    pub fn new(timing: HbmTiming, rate: DataRate, banks: usize) -> Self {
        TimingChecker {
            timing,
            rate,
            banks,
            refresh_interval: false,
        }
    }

    /// Also require every bank to be refreshed at least once per
    /// `2 x tREFIsb` between consecutive REFsb commands (only sound for
    /// sustained workloads that run the refresh engine throughout).
    pub fn with_refresh_interval(mut self) -> Self {
        self.refresh_interval = true;
        self
    }

    /// Replay `commands` (one channel) and return every rule violation
    /// found, as human-readable descriptions. An empty vector means
    /// the stream is conformant. Commands are replayed in issue-time
    /// order (the log records controller *call* order, which may run
    /// ahead of or behind the clock — schedules are computed, not
    /// event-stepped); ties keep log order.
    pub fn replay(&self, commands: &[HbmCommand]) -> Vec<String> {
        let mut commands = commands.to_vec();
        commands.sort_by_key(|c| c.at);
        let t = &self.timing;
        let mut violations = Vec::new();
        let mut banks = vec![
            BankReplay {
                open: None,
                act_at: SimTime::ZERO,
                idle_at: SimTime::ZERO,
                last_cas_end: SimTime::ZERO,
                last_refresh: None,
            };
            self.banks
        ];
        let mut bus_free_at = SimTime::ZERO;
        let mut last_dir: Option<rip_hbm::Direction> = None;
        let mut recent_acts: VecDeque<SimTime> = VecDeque::with_capacity(4);

        for cmd in &commands {
            let at = cmd.at;
            if cmd.bank >= self.banks {
                violations.push(format!(
                    "bank {} out of range (channel has {})",
                    cmd.bank, self.banks
                ));
                continue;
            }
            let b = &mut banks[cmd.bank];
            match cmd.kind {
                HbmCommandKind::Activate { row } => {
                    if b.open.is_some() {
                        violations.push(format!("ACT at {at}: bank {} already open", cmd.bank));
                    }
                    if at < b.idle_at {
                        violations.push(format!(
                            "ACT at {at}: bank {} not idle until {} (tRP/tRFCsb)",
                            cmd.bank, b.idle_at
                        ));
                    }
                    if recent_acts.len() == 4 {
                        let window_open = recent_acts[0] + t.t_faw;
                        if at < window_open {
                            violations.push(format!(
                                "ACT at {at}: 5th activation inside tFAW window (open at {window_open})"
                            ));
                        }
                        recent_acts.pop_front();
                    }
                    recent_acts.push_back(at);
                    b.open = Some(row);
                    b.act_at = at;
                }
                HbmCommandKind::Read { size, end } | HbmCommandKind::Write { size, end } => {
                    let dir = match cmd.kind {
                        HbmCommandKind::Read { .. } => rip_hbm::Direction::Read,
                        _ => rip_hbm::Direction::Write,
                    };
                    if b.open.is_none() {
                        violations.push(format!("CAS at {at}: bank {} has no open row", cmd.bank));
                    }
                    let cas_ready = b.act_at + t.t_rcd;
                    if b.open.is_some() && at < cas_ready {
                        violations.push(format!(
                            "CAS at {at}: tRCD not elapsed (ready at {cas_ready})"
                        ));
                    }
                    let gap = match (last_dir, dir) {
                        (Some(rip_hbm::Direction::Write), rip_hbm::Direction::Read) => t.t_wtr,
                        (Some(rip_hbm::Direction::Read), rip_hbm::Direction::Write) => t.t_rtw,
                        _ => rip_units::TimeDelta::ZERO,
                    };
                    let bus_gate = bus_free_at + gap;
                    if at < bus_gate {
                        violations.push(format!(
                            "CAS at {at}: data bus not free until {bus_gate} (serialization/turnaround)"
                        ));
                    }
                    let expect_end = at + self.rate.transfer_time(size);
                    if end != expect_end {
                        violations.push(format!(
                            "CAS at {at}: transfer end {end} inconsistent with {size} at {} (expected {expect_end})",
                            self.rate
                        ));
                    }
                    bus_free_at = bus_free_at.max(end);
                    last_dir = Some(dir);
                    b.last_cas_end = b.last_cas_end.max(end);
                }
                HbmCommandKind::Precharge => {
                    if b.open.is_none() {
                        violations.push(format!("PRE at {at}: bank {} is idle", cmd.bank));
                    } else {
                        let ras_gate = b.act_at + t.t_ras;
                        if at < ras_gate {
                            violations.push(format!(
                                "PRE at {at}: tRAS not elapsed (open since {}, gate {ras_gate})",
                                b.act_at
                            ));
                        }
                        if at < b.last_cas_end {
                            violations.push(format!(
                                "PRE at {at}: last transfer still in flight until {}",
                                b.last_cas_end
                            ));
                        }
                    }
                    b.open = None;
                    b.idle_at = at + t.t_rp;
                }
                HbmCommandKind::RefreshSb => {
                    if b.open.is_some() || at < b.idle_at {
                        violations.push(format!(
                            "REFsb at {at}: bank {} not idle (idle at {})",
                            cmd.bank, b.idle_at
                        ));
                    }
                    if self.refresh_interval {
                        if let Some(prev) = b.last_refresh {
                            let deadline = prev + t.t_refi_sb + t.t_refi_sb;
                            if at > deadline {
                                violations.push(format!(
                                    "REFsb at {at}: bank {} starved (previous at {prev}, deadline {deadline})",
                                    cmd.bank
                                ));
                            }
                        }
                    }
                    b.last_refresh = Some(at);
                    b.idle_at = at + t.t_rfc_sb;
                }
            }
        }
        violations
    }
}
