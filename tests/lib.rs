//! Shared helpers for the cross-crate integration tests.

use rip_core::RouterConfig;
use rip_traffic::{
    merge_streams, ArrivalProcess, Packet, PacketGenerator, SizeDistribution, TrafficMatrix,
};
use rip_units::SimTime;

/// Build an arrival-ordered trace for an HBM switch.
pub fn trace_for(
    cfg: &RouterConfig,
    tm: &TrafficMatrix,
    load: f64,
    horizon: SimTime,
    seed: u64,
) -> Vec<Packet> {
    let streams: Vec<Vec<Packet>> = (0..cfg.ribbons)
        .map(|i| {
            let row = (load * tm.row_load(i)).min(1.0);
            if row <= 0.0 {
                return Vec::new();
            }
            let mut g = PacketGenerator::new(
                i,
                cfg.port_rate(),
                row,
                tm.row(i).to_vec(),
                SizeDistribution::Imix,
                ArrivalProcess::Poisson,
                128,
                rip_sim::rng::derive_seed(seed, i as u64),
            )
            .expect("valid generator");
            g.generate_until(horizon)
        })
        .collect();
    merge_streams(streams)
}
