//! HBM timing-conformance suite.
//!
//! Every test records the command stream actually issued on each HBM
//! channel during a workload and replays it through the independent
//! [`TimingChecker`] oracle, which re-derives tRCD/tRP/tRAS/tFAW/
//! tWTR/tRTW, data-bus serialization and (for sustained schedules)
//! the per-bank refresh interval from nothing but the log, the timing
//! parameter set and the channel rate. A final negative test corrupts
//! a timing parameter and asserts the oracle catches the now-illegal
//! stream — proving the suite has teeth.

use rip_core::{FaultKind, FaultPlan, HbmSwitch, RouterConfig};
use rip_hbm::{HbmGeometry, HbmGroup, HbmTiming, PfiConfig, PfiController};
use rip_integration_tests::{trace_for, TimingChecker};
use rip_traffic::{ReplaySource, TrafficMatrix};
use rip_units::{SimTime, TimeDelta};

/// Replay every channel's recorded stream; panic on any violation.
fn assert_conformant(sw: &HbmSwitch, what: &str) {
    let mut total = 0usize;
    for (i, ch) in sw.hbm().channels().enumerate() {
        let checker = TimingChecker::new(*ch.timing(), ch.rate(), ch.num_banks());
        let v = checker.replay(ch.commands());
        assert!(
            v.is_empty(),
            "{what}: channel {i}: {} violations, first: {:?}",
            v.len(),
            &v[..v.len().min(3)]
        );
        total += ch.commands().len();
    }
    assert!(total > 0, "{what}: no HBM commands recorded");
}

#[test]
fn uniform_workload_is_conformant() {
    let cfg = RouterConfig::resilience_small();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let trace = trace_for(&cfg, &tm, 0.8, SimTime::from_ns(120_000), 11);
    let mut sw = HbmSwitch::new(cfg).expect("valid config");
    sw.set_hbm_command_recording(true);
    sw.run_source(
        ReplaySource::new(&trace),
        SimTime::from_ns(500_000),
        &FaultPlan::default(),
    );
    assert_conformant(&sw, "uniform");
}

#[test]
fn hotspot_workload_is_conformant() {
    let cfg = RouterConfig::resilience_small();
    let tm = TrafficMatrix::hotspot(cfg.ribbons, 1.0, 0, 0.6);
    let trace = trace_for(&cfg, &tm, 0.8, SimTime::from_ns(120_000), 13);
    let mut sw = HbmSwitch::new(cfg).expect("valid config");
    sw.set_hbm_command_recording(true);
    sw.run_source(
        ReplaySource::new(&trace),
        SimTime::from_ns(500_000),
        &FaultPlan::default(),
    );
    assert_conformant(&sw, "hotspot");
}

#[test]
fn faulted_workload_is_conformant() {
    // A channel dies mid-run and recovers, and a bank sticks: the
    // degraded-mode schedule must still obey every device timing rule.
    let cfg = RouterConfig::resilience_small();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let trace = trace_for(&cfg, &tm, 0.6, SimTime::from_ns(160_000), 17);
    let plan = FaultPlan::new()
        .inject(
            SimTime::from_ns(40_000),
            FaultKind::HbmChannelDown { channel: 1 },
        )
        .recover(
            SimTime::from_ns(90_000),
            FaultKind::HbmChannelDown { channel: 1 },
        )
        .inject(
            SimTime::from_ns(60_000),
            FaultKind::HbmBankStuck {
                channel: 0,
                bank: 2,
            },
        );
    plan.validate(&cfg).expect("plan valid");
    let mut sw = HbmSwitch::new(cfg).expect("valid config");
    sw.set_hbm_command_recording(true);
    sw.run_source(ReplaySource::new(&trace), SimTime::from_ns(700_000), &plan);
    assert_conformant(&sw, "faulted");
}

#[test]
fn pfi_sustained_schedule_is_conformant_including_refresh() {
    let mut group = HbmGroup::new(1, HbmGeometry::hbm4(), HbmTiming::hbm4());
    group.set_record_commands(true);
    let mut pfi = PfiController::new(PfiConfig::reference(), &group).expect("valid");
    pfi.run_sustained(&mut group, 600);
    for (i, ch) in group.channels().enumerate() {
        let checker =
            TimingChecker::new(*ch.timing(), ch.rate(), ch.num_banks()).with_refresh_interval();
        let v = checker.replay(ch.commands());
        assert!(
            v.is_empty(),
            "pfi: channel {i}: {} violations, first: {:?}",
            v.len(),
            &v[..v.len().min(3)]
        );
        assert!(
            !ch.commands().is_empty(),
            "pfi: channel {i} recorded nothing"
        );
    }
}

#[test]
fn corrupted_timing_parameter_is_caught() {
    // Record a conformant PFI stream, then replay it against rule sets
    // with one deliberately tightened parameter each: the oracle must
    // reject the stream. This is the proof the suite can actually fail.
    let mut group = HbmGroup::new(1, HbmGeometry::hbm4(), HbmTiming::hbm4());
    group.set_record_commands(true);
    let mut pfi = PfiController::new(PfiConfig::reference(), &group).expect("valid");
    pfi.run_sustained(&mut group, 200);

    let mut slow_rcd = HbmTiming::hbm4();
    slow_rcd.t_rcd += TimeDelta::from_ns(16); // 32 ns
    let mut wide_faw = HbmTiming::hbm4();
    wide_faw.t_faw = TimeDelta::from_ns(80);
    for (name, corrupted) in [("tRCD doubled", slow_rcd), ("tFAW doubled", wide_faw)] {
        let violations: usize = group
            .channels()
            .map(|ch| {
                TimingChecker::new(corrupted, ch.rate(), ch.num_banks())
                    .replay(ch.commands())
                    .len()
            })
            .sum();
        assert!(
            violations > 0,
            "{name}: recorded stream should be illegal under the corrupted rule set"
        );
    }
}
