//! Golden-report snapshot tests: the serialized reports must be
//! byte-stable across repeated same-seed runs — including the
//! multi-threaded SPS run, where per-plane results are produced on
//! worker threads and merged deterministically in plane order. Any
//! wall-clock timestamp, iteration-order dependence or float
//! accumulation-order difference would show up here as a diff.

use rip_core::{HbmSwitch, RouterConfig, SpsRouter, SpsWorkload};
use rip_integration_tests::trace_for;
use rip_photonics::SplitPattern;
use rip_traffic::TrafficMatrix;
use rip_units::SimTime;

/// One quickstart-style switch run, serialized.
fn switch_report_json() -> String {
    let cfg = RouterConfig::small();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let trace = trace_for(&cfg, &tm, 0.8, SimTime::from_ns(100_000), 42);
    let sw = HbmSwitch::new(cfg).expect("valid config");
    let r = sw.run(&trace, SimTime::from_ns(400_000));
    serde_json::to_string(&r).expect("report serializes")
}

/// One resilience-small SPS run (per-plane crossbeam threads),
/// serialized.
fn sps_report_json() -> String {
    let cfg = RouterConfig::resilience_small();
    let router = SpsRouter::new(cfg.clone(), SplitPattern::Striped).expect("valid config");
    let w = SpsWorkload::uniform(cfg.ribbons, 0.8, 7);
    let r = router.run(&w, SimTime::from_ns(100_000));
    serde_json::to_string(&r).expect("report serializes")
}

#[test]
fn switch_report_snapshot_is_byte_stable() {
    let a = switch_report_json();
    let b = switch_report_json();
    assert_eq!(a, b, "same-seed switch reports must serialize identically");
    // Schema sanity: the telemetry surface made it into the snapshot.
    for key in [
        "switch.frame.fill_efficiency",
        "hbm.row_hit_ratio",
        "switch.frames.written",
        "phy.oeo_energy_j",
    ] {
        assert!(a.contains(key), "snapshot should contain metric {key}");
    }
}

#[test]
fn sps_report_snapshot_is_byte_stable_across_thread_schedules() {
    let a = sps_report_json();
    let b = sps_report_json();
    assert_eq!(
        a, b,
        "same-seed SPS reports must serialize identically regardless of \
         worker-thread scheduling"
    );
    assert!(a.contains("metrics"), "merged registry must be present");
}

#[test]
fn switch_report_round_trips_through_json() {
    let cfg = RouterConfig::small();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let trace = trace_for(&cfg, &tm, 0.5, SimTime::from_ns(50_000), 3);
    let sw = HbmSwitch::new(cfg).expect("valid config");
    let r = sw.run(&trace, SimTime::from_ns(200_000));
    let json = serde_json::to_string(&r).expect("serializes");
    let back: rip_core::SwitchReport = serde_json::from_str(&json).expect("deserializes");
    let json2 = serde_json::to_string(&back).expect("re-serializes");
    assert_eq!(json, json2, "decode/encode must be the identity on reports");
}
