//! Self-profiler non-interference differential suite.
//!
//! The profiler observes and must never participate: enabling it may
//! not change one byte of any deterministic output surface. This suite
//! runs every shipped config under every engine x kernel pairing twice
//! — once silent, once with a [`ProfileHub`] attached — and demands
//! byte-identical final reports and JSONL telemetry streams. The same
//! contract is checked for the two remaining deterministic surfaces:
//! Chrome trace exports and checkpoint snapshot containers. Each
//! comparison also asserts the profiled run actually recorded phases,
//! so a regression that silently disables the profiler cannot make the
//! identity claims vacuous.

use std::cell::RefCell;
use std::path::PathBuf;

use rip_core::{EngineKind, FaultPlan, HbmSwitch, RouterConfig, RunOutcome, ShardTuning};
use rip_integration_tests::source_for;
use rip_sim::QueueKind;
use rip_telemetry::{JsonlSink, Phase, ProfileHub, SharedSink, TraceWindow};
use rip_traffic::{
    ArrivalProcess, BoundedSource, PacketGenerator, SizeDistribution, TrafficMatrix,
};
use rip_units::{SimTime, TimeDelta};
use serde::Deserialize;

// ---------------------------------------------------------------------
// Local mirror of the `ripsim` spec schema (the binary does not export
// it) — the same subset `kernel_equivalence.rs` decodes, so every
// shipped config parses unchanged.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum MatrixSpec {
    Uniform,
    Hotspot { output: usize, fraction: f64 },
    Permutation { shift: usize },
    LogNormal { sigma: f64, seed: u64 },
}

#[derive(Debug, Clone, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum SizeSpec {
    Fixed { bytes: u64 },
    Uniform { min: u64, max: u64 },
    Imix,
}

#[derive(Debug, Clone, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum ProcessSpec {
    Poisson,
    Cbr,
    OnOff { mean_burst_packets: f64 },
}

#[derive(Debug, Clone, Deserialize)]
struct SimSpec {
    router: RouterConfig,
    load: f64,
    matrix: MatrixSpec,
    sizes: SizeSpec,
    process: ProcessSpec,
    flows: usize,
    seed: u64,
    horizon_us: u64,
    drain_factor: u64,
    #[serde(default)]
    epoch_ps: Option<u64>,
}

fn build_lanes(spec: &SimSpec, horizon: SimTime) -> Vec<BoundedSource<PacketGenerator>> {
    let n = spec.router.ribbons;
    let tm = match spec.matrix {
        MatrixSpec::Uniform => TrafficMatrix::uniform(n, 1.0),
        MatrixSpec::Hotspot { output, fraction } => {
            TrafficMatrix::hotspot(n, 1.0, output, fraction)
        }
        MatrixSpec::Permutation { shift } => {
            let perm: Vec<usize> = (0..n).map(|i| (i + shift) % n).collect();
            TrafficMatrix::permutation(&perm, 1.0).expect("valid permutation")
        }
        MatrixSpec::LogNormal { sigma, seed } => TrafficMatrix::log_normal(n, 1.0, sigma, seed),
    };
    let sizes = match spec.sizes {
        SizeSpec::Fixed { bytes } => {
            SizeDistribution::Fixed(rip_units::DataSize::from_bytes(bytes))
        }
        SizeSpec::Uniform { min, max } => SizeDistribution::Uniform { min, max },
        SizeSpec::Imix => SizeDistribution::Imix,
    };
    let process = match spec.process {
        ProcessSpec::Poisson => ArrivalProcess::Poisson,
        ProcessSpec::Cbr => ArrivalProcess::Cbr,
        ProcessSpec::OnOff { mean_burst_packets } => ArrivalProcess::OnOff { mean_burst_packets },
    };
    (0..n)
        .map(|port| {
            let g = PacketGenerator::new(
                port,
                spec.router.port_rate(),
                (spec.load * tm.row_load(port)).min(1.0),
                tm.row(port).to_vec(),
                sizes.clone(),
                process,
                spec.flows,
                rip_sim::rng::derive_seed(spec.seed, port as u64),
            )
            .expect("config builds a valid generator");
            BoundedSource::new(g, horizon)
        })
        .collect()
}

fn epoch_period(spec: &SimSpec) -> TimeDelta {
    TimeDelta::from_ps(spec.epoch_ps.unwrap_or(2_000_000))
}

/// Every shipped config file, with its decoded spec.
fn shipped_configs() -> Vec<(String, SimSpec)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../configs");
    let mut names: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("configs/ directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "no configs found in {}", dir.display());
    names
        .into_iter()
        .map(|p| {
            let name = p
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            let text = std::fs::read_to_string(&p).expect("config readable");
            let spec: SimSpec = serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("{name} does not decode as a SimSpec: {e}"));
            (name, spec)
        })
        .collect()
}

/// Debug-profile cap on arrival horizons — identity needs identical
/// event sequences, not full-length soaks.
const HORIZON_CAP_US: u64 = 20;

/// Run `spec` under an explicit engine/kernel pairing, optionally with
/// a profiler attached, and return the serialized final report plus
/// the rendered JSONL telemetry stream.
fn run_spec(
    spec: &SimSpec,
    kind: QueueKind,
    engine: EngineKind,
    horizon: SimTime,
    hub: Option<&ProfileHub>,
) -> (String, Vec<u8>) {
    let deadline = SimTime::from_ps(horizon.as_ps() * (1 + spec.drain_factor));
    let staged = SharedSink::new();
    let mut cfg = spec.router.clone();
    cfg.engine = engine;
    let mut sw = HbmSwitch::new(cfg).expect("shipped config is valid");
    sw.set_queue_kind(kind);
    if let Some(h) = hub {
        sw.enable_profiler(h.clone());
    }
    sw.enable_live_telemetry(epoch_period(spec), 64, Box::new(staged.clone()));
    sw.run_ports_tuned(
        build_lanes(spec, horizon),
        deadline,
        &FaultPlan::default(),
        ShardTuning::default(),
    );
    let report = serde_json::to_string(&sw.into_report()).expect("report serializes");
    let mut jsonl: Vec<u8> = Vec::new();
    {
        let mut sink = JsonlSink::new(&mut jsonl);
        staged.take().replay_into(&mut sink);
    }
    (report, jsonl)
}

#[test]
fn profiler_leaves_every_engine_and_kernel_byte_identical() {
    let engines = [EngineKind::Sequential, EngineKind::Sharded { shards: 2 }];
    let kinds = [QueueKind::TimingWheel, QueueKind::BinaryHeap];
    for (name, spec) in &shipped_configs() {
        let horizon = SimTime::from_ns(spec.horizon_us.min(HORIZON_CAP_US) * 1000);
        for engine in engines {
            for kind in kinds {
                let silent = run_spec(spec, kind, engine, horizon, None);
                // A ring-only hub, exactly what `--profile` without an
                // output stream attaches.
                let hub = ProfileHub::new();
                let profiled = run_spec(spec, kind, engine, horizon, Some(&hub));
                assert_eq!(
                    silent.0, profiled.0,
                    "{name}: {engine:?}/{kind:?} report changed under profiling"
                );
                assert_eq!(
                    silent.1, profiled.1,
                    "{name}: {engine:?}/{kind:?} JSONL stream changed under profiling"
                );
                assert!(!silent.1.is_empty(), "{name}: comparison was vacuous");
                assert!(
                    hub.records_total() > 0,
                    "{name}: {engine:?}/{kind:?} profiled run recorded nothing"
                );
            }
        }
    }
}

#[test]
fn profiler_leaves_chrome_traces_byte_identical() {
    let (name, spec) = shipped_configs().remove(0);
    let horizon = SimTime::from_ns(spec.horizon_us.min(HORIZON_CAP_US) * 1000);
    let deadline = SimTime::from_ps(horizon.as_ps() * (1 + spec.drain_factor));
    let run = |hub: Option<&ProfileHub>| -> (String, Vec<u8>) {
        let mut sw = HbmSwitch::new(spec.router.clone()).expect("valid config");
        if let Some(h) = hub {
            sw.enable_profiler(h.clone());
        }
        sw.enable_chrome_trace(TraceWindow::all());
        sw.run_ports_tuned(
            build_lanes(&spec, horizon),
            deadline,
            &FaultPlan::default(),
            ShardTuning::default(),
        );
        let rec = sw.take_chrome_trace().expect("trace enabled");
        let mut json: Vec<u8> = Vec::new();
        rec.write_chrome_json(&mut json).expect("trace serializes");
        let report = serde_json::to_string(&sw.into_report()).expect("report serializes");
        (report, json)
    };
    let silent = run(None);
    let hub = ProfileHub::new();
    let profiled = run(Some(&hub));
    assert_eq!(
        silent.0, profiled.0,
        "{name}: traced report changed under profiling"
    );
    assert_eq!(
        silent.1, profiled.1,
        "{name}: Chrome trace changed under profiling"
    );
    assert!(silent.1.len() > 2, "{name}: trace comparison was vacuous");
    assert!(hub.records_total() > 0, "{name}: profiler recorded nothing");
}

#[test]
fn profiler_leaves_checkpoint_snapshots_byte_identical() {
    // The checkpoint path is itself instrumented (CheckpointSave
    // spans), so the snapshot payloads it persists are the surface most
    // at risk: compare every snapshot a checkpointed run writes, plus
    // its outcome, report, and telemetry stream.
    let cfg = RouterConfig::small();
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let horizon = SimTime::from_ns(20_000);
    let run = |hub: Option<&ProfileHub>| -> (Vec<String>, RunOutcome, String, Vec<u8>) {
        let staged = SharedSink::new();
        let mut sw = HbmSwitch::new(cfg.clone()).expect("valid config");
        if let Some(h) = hub {
            sw.enable_profiler(h.clone());
        }
        sw.enable_live_telemetry(TimeDelta::from_ns(2_000), 64, Box::new(staged.clone()));
        let snaps = RefCell::new(Vec::new());
        let outcome = sw
            .run_source_checkpointed(
                source_for(&cfg, &tm, 0.8, horizon, 0xF11D),
                cfg.drain.deadline(horizon),
                &FaultPlan::default(),
                None,
                2,
                || false,
                |state, _epochs, _spans| {
                    let body = serde_json::to_string(state).expect("snapshot serializes");
                    snaps.borrow_mut().push(body);
                    Ok(())
                },
            )
            .expect("checkpointed run");
        let report = serde_json::to_string(&sw.into_report()).expect("report serializes");
        let mut jsonl: Vec<u8> = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut jsonl);
            staged.take().replay_into(&mut sink);
        }
        (snaps.into_inner(), outcome, report, jsonl)
    };
    let (snaps_off, outcome_off, report_off, jsonl_off) = run(None);
    let hub = ProfileHub::new();
    let (snaps_on, outcome_on, report_on, jsonl_on) = run(Some(&hub));
    assert!(!snaps_off.is_empty(), "run wrote no snapshots — vacuous");
    assert_eq!(
        snaps_off, snaps_on,
        "snapshot payloads changed under profiling"
    );
    assert_eq!(
        outcome_off, outcome_on,
        "run outcome changed under profiling"
    );
    assert_eq!(report_off, report_on, "report changed under profiling");
    assert_eq!(jsonl_off, jsonl_on, "JSONL stream changed under profiling");
    assert!(hub.records_total() > 0, "profiler recorded nothing");
    // The checkpoint path must actually have been attributed.
    let saved: u64 = hub
        .recent()
        .iter()
        .filter_map(|r| r.phases.get(Phase::CheckpointSave.name()))
        .map(|s| s.count)
        .sum();
    assert!(saved > 0, "no CheckpointSave spans were recorded");
}

#[test]
fn profile_records_are_well_formed() {
    // Structural contract of the records the identity tests rely on:
    // every phase key is a known `Phase` name, every entry carries at
    // least one span, and per-source epoch stamps never run backwards.
    let (name, spec) = shipped_configs().remove(0);
    let horizon = SimTime::from_ns(spec.horizon_us.min(HORIZON_CAP_US) * 1000);
    let hub = ProfileHub::new();
    run_spec(
        &spec,
        QueueKind::TimingWheel,
        EngineKind::Sharded { shards: 2 },
        horizon,
        Some(&hub),
    );
    let records = hub.recent();
    assert!(!records.is_empty(), "{name}: no records to validate");
    let known: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
    let mut last_epoch: std::collections::BTreeMap<&str, u64> = Default::default();
    for rec in &records {
        assert!(!rec.phases.is_empty(), "{name}: empty record was flushed");
        for (phase, s) in &rec.phases {
            assert!(
                known.contains(&phase.as_str()),
                "{name}: unknown phase {phase}"
            );
            assert!(s.count > 0, "{name}: zero-span phase {phase} emitted");
        }
        if let Some(prev) = last_epoch.get(rec.source.as_str()) {
            assert!(
                rec.epoch >= *prev,
                "{name}: {} epochs ran backwards",
                rec.source
            );
        }
        last_epoch.insert(rec.source.as_str(), rec.epoch);
    }
    // Sharded runs attribute work to the per-shard sources too.
    assert!(
        records.iter().any(|r| r.source == "engine"),
        "{name}: no engine-source records"
    );
    let rendered = hub.render_prometheus("ripsim");
    assert!(rendered.contains("ripsim_profile_phase_seconds_total{source=\"engine\""));
    assert!(rendered.contains("ripsim_profile_records_total{source=\"engine\"}"));
}
