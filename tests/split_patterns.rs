//! E5/E15/E17 integration: split patterns, fill skew, hashing evenness
//! and the adversarial scenario at the paper's full N/F/H geometry.

use rip_photonics::{SplitMap, SplitPattern};
use rip_traffic::{Attacker, FiberFill};

const N: usize = 16;
const F: usize = 64;
const H: usize = 16;

fn loads_for(fill: FiberFill, total: f64) -> Vec<Vec<f64>> {
    (0..N).map(|_| fill.loads(F, total)).collect()
}

#[test]
fn all_patterns_conserve_load_and_alpha() {
    for pattern in [
        SplitPattern::Sequential,
        SplitPattern::Striped,
        SplitPattern::PseudoRandom { seed: 99 },
    ] {
        let m = SplitMap::new(N, F, H, pattern).unwrap();
        assert_eq!(m.alpha(), 4);
        let loads = loads_for(FiberFill::Linear, 16.0);
        let per_switch = m.switch_loads(&loads);
        let total: f64 = per_switch.iter().sum();
        assert!((total - 16.0 * N as f64).abs() < 1e-6, "{pattern:?}");
    }
}

#[test]
fn uniform_fill_is_perfectly_balanced_under_any_pattern() {
    for pattern in [
        SplitPattern::Sequential,
        SplitPattern::Striped,
        SplitPattern::PseudoRandom { seed: 4 },
    ] {
        let m = SplitMap::new(N, F, H, pattern).unwrap();
        let per_switch = m.switch_loads(&loads_for(FiberFill::Uniform, 32.0));
        let expect = 32.0 * N as f64 / H as f64;
        for (s, &l) in per_switch.iter().enumerate() {
            assert!((l - expect).abs() < 1e-9, "{pattern:?} switch {s}: {l}");
        }
    }
}

#[test]
fn fill_skew_hurts_sequential_most_at_full_geometry() {
    let seq = SplitMap::new(N, F, H, SplitPattern::Sequential).unwrap();
    let rnd = SplitMap::new(N, F, H, SplitPattern::PseudoRandom { seed: 12 }).unwrap();
    let striped = SplitMap::new(N, F, H, SplitPattern::Striped).unwrap();
    // Quarter of the fibers lit, at full rate.
    let loads = loads_for(FiberFill::FirstFilled { used: F / 4 }, 16.0);
    let max = |m: &SplitMap| m.switch_loads(&loads).into_iter().fold(0.0f64, f64::max);
    let (s, r, st) = (max(&seq), max(&rnd), max(&striped));
    // Sequential concentrates everything on the first H/4 switches.
    assert!(s >= 4.0 * N as f64 - 1e-9, "sequential max {s}");
    assert!(r < s, "pseudo-random {r} !< sequential {s}");
    // Striped is perfectly balanced for this particular skew.
    assert!(st < r + 1e-9, "striped {st} vs random {r}");
}

#[test]
fn pseudo_random_concentration_is_near_fair_across_many_seeds() {
    // Statistical check: over many secret seeds, a sequential-believing
    // attacker's concentration stays near 1 (fair share).
    let believed = SplitMap::new(N, F, H, SplitPattern::Sequential).unwrap();
    let atk = Attacker::new(32.0);
    let mut worst: f64 = 0.0;
    for seed in 0..50 {
        let truth = SplitMap::new(N, F, H, SplitPattern::PseudoRandom { seed }).unwrap();
        let out = atk.evaluate(&believed, &truth, 0);
        worst = worst.max(out.concentration);
    }
    // Far below the H=16 a correct-belief attacker achieves.
    assert!(worst < 4.0, "worst concentration {worst}");
}

#[test]
fn attack_on_every_victim_behaves_the_same() {
    let truth = SplitMap::new(N, F, H, SplitPattern::PseudoRandom { seed: 1234 }).unwrap();
    let atk = Attacker::new(16.0);
    for victim in 0..H {
        let correct = atk.evaluate(&truth, &truth, victim);
        assert!(
            (correct.concentration - H as f64).abs() < 1e-9,
            "victim {victim}: {}",
            correct.concentration
        );
    }
}
